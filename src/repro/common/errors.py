"""Exception hierarchy for the TokenTM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subclasses
distinguish the major subsystems: simulation configuration, the cache
coherence substrate, token/metastate bookkeeping, and transaction
execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration value."""


class CoherenceError(ReproError):
    """Violation of a cache coherence protocol invariant.

    Raised when the directory and cache states disagree, e.g. two
    modified copies of one block, or a sharer the directory does not
    know about.  These indicate bugs in the protocol model, never
    expected runtime conditions.
    """


class MetastateError(ReproError):
    """Illegal metastate transition, fission, or fusion.

    The paper's Table 3(b) marks several fusion combinations as
    errors (e.g. a transactional writer meeting foreign readers);
    reaching one of those combinations means the single-writer
    invariant was already broken.
    """


class BookkeepingError(ReproError):
    """Double-entry bookkeeping invariant violation.

    Raised by the ledger auditor when the tokens debited from a
    block's logical metastate stop matching the tokens credited to
    the per-thread software logs.
    """


class TokenError(ReproError):
    """Illegal token acquisition or release (e.g. over-release)."""


class TransactionError(ReproError):
    """Misuse of the transaction lifecycle API.

    Examples: committing a transaction that was never begun, nesting
    begins on a flat-nesting HTM, or accessing memory from an aborted
    transaction before it restarts.
    """


class SerializabilityError(ReproError):
    """The committed-transaction history is not serializable.

    Raised by the history validator when the conflict graph over
    committed transactions contains a cycle, which would mean the HTM
    under test failed to provide isolation.
    """


class InvariantViolationError(ReproError):
    """A monitored machine invariant failed during a run.

    Raised by the fault-injection campaign's invariant monitor when a
    mid-run or end-of-run check (token conservation, metastate
    legality, undo-log consistency, serializability) fails.  The
    underlying oracle error is chained as ``__cause__``.
    """


class IncompleteGridError(ReproError):
    """A grid run ended with unfinished cells.

    Raised by :class:`~repro.perf.runner.ParallelRunner` when one or
    more cells exhausted their retry budget (worker exception, hung
    cell, repeated pool breakage), so the result list would otherwise
    contain silent ``None`` holes.  Carries the supervision record:

    ``report``
        the :class:`~repro.perf.supervise.RunReport` with one
        :class:`~repro.perf.supervise.CellFailure` per failed cell;
    ``results``
        the partial result list (``None`` at each failed index), so
        callers running under the ``continue`` policy can salvage the
        cells that did finish.
    """

    def __init__(self, message: str, report=None, results=None):
        super().__init__(message)
        self.report = report
        self.results = results


class TraceError(ReproError):
    """Malformed workload trace (unknown opcode, unbalanced txn markers)."""


class SimulationError(ReproError):
    """Executor-level failure, e.g. a thread that can never make progress."""
