"""Optional numpy gate + columnar helpers for vectorized backends.

The batch simulation kernel (:mod:`repro.kernels.batch`) and the
bulk-query helpers in ``signatures/``, ``mem/`` and ``coherence/``
express their hot work as whole-column array operations.  When numpy
is installed those columns are real ndarrays; when it is not, the
same functions run over plain Python lists with identical results —
no caller ever sees an ``ImportError``.  ``HAVE_NUMPY`` reports which
path is live (published as the ``kernels.batch.numpy`` metric).

This module sits at the bottom of the layering (``repro.common``):
it must import nothing from the simulator so every layer — kernels,
signatures, metabit store, coherence — can reach it without cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

try:  # pragma: no cover - exercised indirectly on both paths
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when the numpy-accelerated column builders are in use.
HAVE_NUMPY = _np is not None

#: Expose the module (or None) for callers that want raw ndarray ops.
np = _np


def compute_prefix(opcodes: Sequence[int], args: Sequence[int],
                   compute_opcode: int) -> List[int]:
    """Cumulative COMPUTE-cycle sums: ``prefix[i]`` = cycles consumed
    by COMPUTE ops strictly before index ``i`` (length ``n + 1``).

    The batch kernel advances a whole COMPUTE run per quantum with one
    ``bisect_left`` over this column instead of one loop iteration per
    op.  Non-COMPUTE positions contribute zero, so the column is valid
    to bisect across any maximal COMPUTE run.
    """
    n = len(opcodes)
    if HAVE_NUMPY and n:
        opc = _np.asarray(opcodes, dtype=_np.int64)
        arg = _np.asarray(args, dtype=_np.int64)
        prefix = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(_np.where(opc == compute_opcode, arg, 0),
                   out=prefix[1:])
        return prefix.tolist()
    prefix = [0] * (n + 1)
    acc = 0
    for i in range(n):
        if opcodes[i] == compute_opcode:
            acc += args[i]
        prefix[i + 1] = acc
    return prefix


def run_ends(opcodes: Sequence[int],
             members: Tuple[int, ...]) -> List[int]:
    """For every index ``i``: the first ``j >= i`` whose opcode is NOT
    in ``members`` (``n`` when the run extends to the end).

    ``ends[i]`` bounds the maximal run of member ops starting at
    ``i``; positions whose own opcode is not a member get ``i``
    itself, so the column is safe to read at any pc.
    """
    n = len(opcodes)
    if HAVE_NUMPY and n:
        opc = _np.asarray(opcodes, dtype=_np.int64)
        member = _np.zeros(n, dtype=bool)
        for m in members:
            member |= opc == m
        stop = _np.where(member, n, _np.arange(n, dtype=_np.int64))
        ends = _np.minimum.accumulate(stop[::-1])[::-1]
        return ends.tolist()
    ends = [0] * n
    end = n
    for i in range(n - 1, -1, -1):
        if opcodes[i] in members:
            ends[i] = end
        else:
            ends[i] = i
            end = i
    return ends


def state_counts(values: Iterable[int], shift: int, mask: int,
                 num_states: int) -> List[int]:
    """Histogram of ``(v >> shift) & mask`` over ``values``.

    Used for the TokenTM metabit fission/fusion profile: one columnar
    pass over the raw 16-bit metabit words instead of a decode per
    block.
    """
    vals = list(values)
    if HAVE_NUMPY and vals:
        arr = (_np.asarray(vals, dtype=_np.int64) >> shift) & mask
        counts = _np.bincount(arr, minlength=num_states)
        return counts[:num_states].tolist()
    counts = [0] * num_states
    for v in vals:
        state = (v >> shift) & mask
        if state < num_states:
            counts[state] += 1
    return counts


def histogram_dict(labels: Sequence[str],
                   counts: Sequence[int]) -> Dict[str, int]:
    """Zip state labels with their columnar counts."""
    return dict(zip(labels, counts))
