"""Shared utilities: configuration, errors, deterministic RNG."""

from repro.common.config import (
    BLOCK_SHIFT,
    BLOCK_SIZE,
    DEFAULT_TOKENS_PER_BLOCK,
    CacheGeometry,
    HTMConfig,
    LatencyModel,
    RunConfig,
    SignatureConfig,
    SystemConfig,
)
from repro.common.errors import (
    BookkeepingError,
    CoherenceError,
    ConfigError,
    MetastateError,
    ReproError,
    SerializabilityError,
    SimulationError,
    TokenError,
    TraceError,
    TransactionError,
)

__all__ = [
    "BLOCK_SHIFT",
    "BLOCK_SIZE",
    "DEFAULT_TOKENS_PER_BLOCK",
    "CacheGeometry",
    "HTMConfig",
    "LatencyModel",
    "RunConfig",
    "SignatureConfig",
    "SystemConfig",
    "BookkeepingError",
    "CoherenceError",
    "ConfigError",
    "MetastateError",
    "ReproError",
    "SerializabilityError",
    "SimulationError",
    "TokenError",
    "TraceError",
    "TransactionError",
]
