"""Deterministic random-number helpers.

All stochastic components of the reproduction (workload generators,
perturbed simulation runs) derive their streams from a single integer
seed through :func:`substream`, so any experiment is reproducible from
its ``RunConfig.seed`` alone.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")

#: Mixing constant (the 64-bit golden ratio) used to decorrelate
#: substream seeds derived from small consecutive integers.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer: scrambles a 64-bit integer."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def substream(seed: int, *lane: int) -> random.Random:
    """Return an independent :class:`random.Random` for a lane.

    ``substream(seed, a, b)`` and ``substream(seed, a, c)`` are
    decorrelated for ``b != c``; the same arguments always return an
    identically-seeded generator.
    """
    state = _mix(seed & _MASK64)
    for part in lane:
        state = _mix(state ^ _mix(part & _MASK64))
    return random.Random(state)


def perturbation_seeds(seed: int, runs: int) -> list:
    """Seeds for pseudo-randomly perturbed simulation runs.

    The paper runs multiple perturbed simulations to produce 95%
    confidence intervals; each run gets one of these seeds.
    """
    return [_mix(seed ^ _mix(i + 1)) for i in range(runs)]


def bounded_sample(rng: random.Random, mean: float, maximum: int,
                   minimum: int = 1) -> int:
    """Draw a positive integer with the given mean, capped at ``maximum``.

    Uses a geometric-like draw whose long tail is clipped to
    ``maximum``.  Workload generators use this to reproduce the
    paper's Table 5 average/maximum read- and write-set sizes, which
    pair small averages with occasional very large transactions.
    """
    if maximum < minimum:
        raise ValueError("maximum must be >= minimum")
    if mean <= minimum:
        return minimum
    # Geometric distribution on {minimum, minimum+1, ...} with the
    # requested mean has success probability 1/(mean - minimum + 1).
    p = 1.0 / (mean - minimum + 1.0)
    value = minimum
    while rng.random() > p and value < maximum:
        value += 1
        # Re-draw trick keeps the tail geometric without looping
        # unboundedly: each iteration extends by one with prob (1-p).
    return value


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one item with the given relative weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if target < acc:
            return item
    return items[-1]


def interleave_round_robin(streams: Sequence[Iterator[T]]) -> Iterator[T]:
    """Round-robin merge of several iterators until all are exhausted."""
    live = list(streams)
    while live:
        still_live = []
        for stream in live:
            try:
                yield next(stream)
            except StopIteration:
                continue
            still_live.append(stream)
        live = still_live
