"""Experiment harness: runs the paper's evaluation grid.

One *cell* of the evaluation is (workload, HTM variant, seed): a fresh
memory system and machine are built, the workload trace is generated
and executed, and a :class:`~repro.runtime.stats.RunStats` comes back.
The helpers here assemble the cells into the paper's figures:

* :func:`run_cell` / :func:`run_variants` — the grid primitives;
* :func:`figure_speedups` — speedups normalized to LogTM-SE_Perf
  (Figures 1 and 5);
* :func:`measure_table5` — read/write-set statistics of the workload
  generators (Table 5);
* :func:`table6_row` — TokenTM-specific overheads (Table 6).

Runs are scaled: executing all 285k transactions of the paper's full
grid in pure Python would take hours, so harnesses pass a ``scale``
(fraction of each workload's Table 5 transaction count) and record it
in the result.  Relative shapes are stable across scales well below
1.0 because conflict rates depend on concurrency and set sizes, not
on total transaction count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.ci import Estimate, confidence_interval
from repro.common.config import HTMConfig, RunConfig, SystemConfig
from repro.common.errors import IncompleteGridError
from repro.common.rng import perturbation_seeds
from repro.coherence.protocol import MemorySystem
from repro.faults.injector import FaultInjector
from repro.faults.monitor import InvariantMonitor
from repro.faults.plan import FaultPlan
from repro.htm import make_htm
from repro.obs.events import EventBus
from repro.runtime.executor import Executor
from repro.runtime.stats import RunStats
from repro.workloads.base import SyntheticTxnWorkload
from repro.workloads.trace import WorkloadTrace, static_set_sizes

#: Variant order used in the paper's Figure 5.
FIGURE5_VARIANTS = (
    "LogTM-SE_2xH3",
    "LogTM-SE_4xH3",
    "LogTM-SE_Perf",
    "TokenTM",
    "TokenTM_NoFast",
)

#: Variant order used in Figure 1 (false-positive study).
FIGURE1_VARIANTS = (
    "LogTM-SE_2xH3",
    "LogTM-SE_4xH3",
    "LogTM-SE_Perf",
)


@dataclass
class Cell:
    """One grid cell result."""

    workload: str
    variant: str
    seed: int
    stats: RunStats


def _require_complete(cells: Sequence[Optional[Cell]],
                      specs: Sequence) -> List[Cell]:
    """Reject result lists with ``None`` holes.

    :class:`~repro.perf.runner.ParallelRunner` already raises rather
    than returning holes; this guard keeps the figure/table builders
    honest against *any* runner implementation — a plotted figure
    must never silently omit a cell that failed to simulate.
    """
    holes = [i for i, cell in enumerate(cells) if cell is None]
    if holes:
        described = ", ".join(
            f"{specs[i].workload.name}/{specs[i].variant}"
            f"/s{specs[i].seed}" for i in holes[:6])
        raise IncompleteGridError(
            f"runner returned no result for {len(holes)} of "
            f"{len(cells)} cells ({described}"
            + (", ..." if len(holes) > 6 else "") + ")",
            results=list(cells),
        )
    return list(cells)


def run_trace(trace: WorkloadTrace, variant: str,
              system: Optional[SystemConfig] = None,
              htm_config: Optional[HTMConfig] = None,
              seed: int = 0,
              audit: bool = False,
              quantum: int = 200,
              bus: Optional[EventBus] = None,
              fast_path: bool = True,
              faults: Optional[FaultPlan] = None,
              monitor: Optional[InvariantMonitor] = None,
              kernel: Optional[str] = None) -> RunStats:
    """Execute an already-generated trace on a fresh machine.

    Pass an enabled :class:`~repro.obs.events.EventBus` to trace the
    run; the default null bus makes instrumentation free.
    ``fast_path=False`` disables the memory-system access filters
    (``--no-fastpath``); results are identical either way.

    ``faults`` injects the given plan (seeded from ``seed``) and
    ``monitor`` runs invariant checks at quantum boundaries; both
    default to absent, keeping this path byte-identical to builds
    without the faults subsystem.  A monitor implies commit-history
    tracking (the serializability oracle needs it).

    ``kernel`` picks the hot-loop backend (``repro.kernels``); every
    backend is byte-identical, so it is purely a speed knob.
    """
    sys_cfg = system or SystemConfig()
    cfg = htm_config or HTMConfig()
    machine = make_htm(variant,
                       MemorySystem(sys_cfg, bus=bus, fast_path=fast_path),
                       cfg)
    run_cfg = RunConfig(system=sys_cfg, htm=cfg, seed=seed, audit=audit,
                        kernel=kernel)
    injector = None
    if faults is not None and faults.specs:
        injector = FaultInjector(faults, seed=seed, bus=bus)
    track_history = monitor is not None and monitor.enabled
    executor = Executor(machine, trace, run_cfg, quantum=quantum,
                        validate=False, track_history=track_history,
                        injector=injector, monitor=monitor)
    return executor.run().stats


def run_cell(workload: SyntheticTxnWorkload, variant: str,
             scale: float = 1.0, seed: int = 0,
             threads: Optional[int] = None,
             system: Optional[SystemConfig] = None,
             htm_config: Optional[HTMConfig] = None,
             bus: Optional[EventBus] = None,
             fast_path: bool = True,
             faults: Optional[FaultPlan] = None,
             monitor: Optional[InvariantMonitor] = None,
             kernel: Optional[str] = None) -> Cell:
    """Generate the workload at ``scale`` and run it on ``variant``."""
    sys_cfg = system or SystemConfig()
    nthreads = threads if threads is not None else sys_cfg.num_cores
    trace = workload.generate(seed=seed, scale=scale, threads=nthreads)
    stats = run_trace(trace, variant, system=sys_cfg,
                      htm_config=htm_config, seed=seed, bus=bus,
                      fast_path=fast_path, faults=faults, monitor=monitor,
                      kernel=kernel)
    return Cell(trace.name, variant, seed, stats)


def run_variants(workload: SyntheticTxnWorkload,
                 variants: Sequence[str],
                 scale: float = 1.0, seed: int = 0,
                 threads: Optional[int] = None,
                 system: Optional[SystemConfig] = None,
                 htm_config: Optional[HTMConfig] = None,
                 runner=None,
                 fast_path: bool = True,
                 kernel: Optional[str] = None) -> Dict[str, Cell]:
    """Run one workload across several variants on identical traces.

    ``runner`` (a :class:`repro.perf.runner.ParallelRunner`) fans the
    variants out over worker processes and/or the result cache; the
    default runs them inline.  Results are identical either way.
    """
    if runner is not None:
        from repro.perf.runner import grid_specs  # local: avoids cycle

        specs = grid_specs([workload], tuple(variants), seeds=(seed,),
                           scale=scale, threads=threads, system=system,
                           htm=htm_config, fast_path=fast_path,
                           kernel=kernel)
        cells = _require_complete(runner.run_cells(specs), specs)
        return dict(zip(variants, cells))
    return {
        v: run_cell(workload, v, scale=scale, seed=seed, threads=threads,
                    system=system, htm_config=htm_config,
                    fast_path=fast_path, kernel=kernel)
        for v in variants
    }


@dataclass
class SpeedupSeries:
    """Per-variant speedups for one workload, CI over perturbed seeds."""

    workload: str
    baseline: str
    speedups: Dict[str, Estimate] = field(default_factory=dict)
    cells: List[Cell] = field(default_factory=list)


def figure_speedups(workload: SyntheticTxnWorkload,
                    variants: Sequence[str] = FIGURE5_VARIANTS,
                    baseline: str = "LogTM-SE_Perf",
                    scale: float = 0.02,
                    runs: int = 1,
                    seed: int = 0,
                    threads: Optional[int] = None,
                    system: Optional[SystemConfig] = None,
                    htm_config: Optional[HTMConfig] = None,
                    runner=None,
                    fast_path: bool = True,
                    kernel: Optional[str] = None) -> SpeedupSeries:
    """Speedup of each variant normalized to ``baseline``.

    ``runs`` > 1 produces 95% confidence intervals from perturbed
    seeds, as the paper does.  ``runner`` fans the whole
    (seed, variant) grid out at once (see :func:`run_variants`).
    """
    if baseline not in variants:
        variants = tuple(variants) + (baseline,)
    seeds = perturbation_seeds(seed, runs)
    per_variant: Dict[str, List[float]] = {v: [] for v in variants}
    series = SpeedupSeries(workload.spec.name, baseline)
    if runner is not None:
        from repro.perf.runner import grid_specs  # local: avoids cycle

        specs = grid_specs(
            [workload], tuple(variants), seeds=tuple(seeds), scale=scale,
            threads=threads, system=system, htm=htm_config,
            fast_path=fast_path, kernel=kernel,
        )
        flat = _require_complete(runner.run_cells(specs), specs)
        nv = len(variants)
        rounds = [dict(zip(variants, flat[i * nv:(i + 1) * nv]))
                  for i in range(len(seeds))]
    else:
        rounds = None
    for i, run_seed in enumerate(seeds):
        cells = rounds[i] if rounds is not None else run_variants(
            workload, variants, scale=scale, seed=run_seed,
            threads=threads, system=system, htm_config=htm_config,
            fast_path=fast_path, kernel=kernel)
        series.cells.extend(cells.values())
        base = cells[baseline].stats.makespan
        for variant, cell in cells.items():
            span = cell.stats.makespan
            per_variant[variant].append(base / span if span else 0.0)
    for variant, samples in per_variant.items():
        series.speedups[variant] = confidence_interval(samples)
    return series


@dataclass
class Table5Row:
    """Measured workload parameters (one Table 5 row)."""

    benchmark: str
    num_txns: int
    avg_read_set: float
    avg_write_set: float
    max_read_set: int
    max_write_set: int


def measure_table5(workload: SyntheticTxnWorkload, seed: int = 0,
                   scale: float = 1.0,
                   threads: int = 32) -> Table5Row:
    """Static read/write-set statistics of a generated workload.

    This measures the *trace* (what a perfect run would see), matching
    Table 5's role of characterizing the workloads themselves.  It is
    cheap even at scale=1.0 because no simulation runs.
    """
    trace = workload.generate(seed=seed, scale=scale, threads=threads)
    sizes = static_set_sizes(trace)
    if not sizes:
        return Table5Row(trace.name, 0, 0.0, 0.0, 0, 0)
    reads = [r for r, _ in sizes]
    writes = [w for _, w in sizes]
    return Table5Row(
        benchmark=trace.name,
        num_txns=len(sizes),
        avg_read_set=sum(reads) / len(reads),
        avg_write_set=sum(writes) / len(writes),
        max_read_set=max(reads),
        max_write_set=max(writes),
    )


@dataclass
class Table6Row:
    """TokenTM-specific overheads (one Table 6 row)."""

    benchmark: str
    fast_pct: float
    fast_avg_read_set: float
    fast_avg_write_set: float
    fast_avg_duration: float
    sw_avg_read_set: float
    sw_avg_write_set: float
    sw_avg_duration: float
    sw_release_cycles: float
    log_stall_pct: float
    aborts: int = 0
    #: Abort attribution (cause -> count) from RunStats.abort_causes:
    #: "conflict", "cm_kill", "stall_limit", "capacity".
    abort_causes: Dict[str, int] = field(default_factory=dict)


def table6_row(workload: SyntheticTxnWorkload, scale: float = 0.02,
               seed: int = 0,
               threads: Optional[int] = None,
               system: Optional[SystemConfig] = None,
               htm_config: Optional[HTMConfig] = None) -> Table6Row:
    """Run TokenTM on one workload and extract the Table 6 columns."""
    cell = run_cell(workload, "TokenTM", scale=scale, seed=seed,
                    threads=threads, system=system, htm_config=htm_config)
    stats = cell.stats
    return Table6Row(
        benchmark=stats.workload,
        fast_pct=100.0 * stats.fast_release_fraction,
        fast_avg_read_set=stats.fast.avg_read_set,
        fast_avg_write_set=stats.fast.avg_write_set,
        fast_avg_duration=stats.fast.avg_duration,
        sw_avg_read_set=stats.software.avg_read_set,
        sw_avg_write_set=stats.software.avg_write_set,
        sw_avg_duration=stats.software.avg_duration,
        sw_release_cycles=stats.software.avg_release_cycles,
        log_stall_pct=100.0 * stats.log_stall_fraction,
        aborts=stats.aborts,
        abort_causes=dict(stats.abort_causes),
    )
