"""Analysis: LCS study, experiment harness, table/figure formatting."""

from repro.analysis.ci import Estimate, confidence_interval, t_quantile_975
from repro.analysis.contention import (
    BlockProfile,
    ConflictRecorder,
    instrument,
    profile_report,
)
from repro.analysis.experiments import (
    FIGURE1_VARIANTS,
    FIGURE5_VARIANTS,
    Cell,
    SpeedupSeries,
    Table5Row,
    Table6Row,
    figure_speedups,
    measure_table5,
    run_cell,
    run_trace,
    run_variants,
    table6_row,
)
from repro.analysis.lcs import (
    CriticalSection,
    LcsReport,
    analyze_lock_trace,
    table1,
)
from repro.analysis.tables import (
    format_bar_chart,
    format_speedup_figure,
    format_table,
    format_table1,
    format_table5,
    format_table6,
)

__all__ = [
    "BlockProfile",
    "Cell",
    "ConflictRecorder",
    "CriticalSection",
    "instrument",
    "profile_report",
    "Estimate",
    "FIGURE1_VARIANTS",
    "FIGURE5_VARIANTS",
    "LcsReport",
    "SpeedupSeries",
    "Table5Row",
    "Table6Row",
    "analyze_lock_trace",
    "confidence_interval",
    "figure_speedups",
    "format_bar_chart",
    "format_speedup_figure",
    "format_table",
    "format_table1",
    "format_table5",
    "format_table6",
    "measure_table5",
    "run_cell",
    "run_trace",
    "run_variants",
    "t_quantile_975",
    "table1",
    "table6_row",
]
