"""Plain-text table and figure formatting for the benchmark harness.

Every table/figure bench prints through these helpers so the output
lines up with the paper's presentation (same columns, same units).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:,.2f}")
            elif isinstance(cell, int):
                rendered.append(f"{cell:,}")
            else:
                rendered.append(str(cell))
        str_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def format_bar_chart(series: Mapping[str, Mapping[str, float]],
                     title: str,
                     width: int = 40,
                     value_format: str = "{:.2f}") -> str:
    """ASCII grouped bar chart: {group: {bar_name: value}}.

    Used to render Figures 1 and 5 (speedup bars per workload).
    """
    peak = max(
        (value for group in series.values() for value in group.values()),
        default=1.0,
    )
    peak = max(peak, 1e-9)
    out = [title]
    for group_name, bars in series.items():
        out.append(f"\n{group_name}")
        name_width = max((len(n) for n in bars), default=0)
        for bar_name, value in bars.items():
            filled = int(round(width * value / peak))
            bar = "#" * filled
            out.append(
                f"  {bar_name.ljust(name_width)} |{bar.ljust(width)}| "
                + value_format.format(value)
            )
    return "\n".join(out)


def format_table1(rows: Iterable[Dict[str, float]]) -> str:
    """Table 1: Analysis of Long-running Critical Sections (LCS)."""
    return format_table(
        ["Benchmark", "Avg. LCS Duration (ms)", "Max. LCS Duration (ms)",
         "% of Total Execution Time"],
        [
            (r["benchmark"], round(float(r["avg_lcs_ms"]), 2),
             round(float(r["max_lcs_ms"]), 2),
             round(float(r["lcs_time_percent"]), 2))
            for r in rows
        ],
        title="Table 1. Analysis of Long-running Critical Sections (LCS)",
    )


def format_table5(rows) -> str:
    """Table 5: Workload Parameters (measured from generators)."""
    return format_table(
        ["Benchmark", "Num Xacts", "Avg Read-Set", "Avg Write-Set",
         "Max Read-Set", "Max Write-Set"],
        [
            (r.benchmark, r.num_txns, round(r.avg_read_set, 1),
             round(r.avg_write_set, 1), r.max_read_set, r.max_write_set)
            for r in rows
        ],
        title="Table 5. Workload Parameters",
    )


def _abort_cell(row) -> str:
    """Abort column: total plus cause attribution when known.

    E.g. ``14 (conflict 9, cm_kill 5)``; a row without cause data
    (older pickles, zero aborts) renders as the bare total.
    """
    causes = getattr(row, "abort_causes", None) or {}
    total = getattr(row, "aborts", 0)
    detail = ", ".join(f"{cause} {count}"
                       for cause, count in sorted(causes.items(),
                                                  key=lambda kv: -kv[1])
                       if count)
    return f"{total} ({detail})" if detail else str(total)


def format_table6(rows) -> str:
    """Table 6: TokenTM Specific Overheads."""
    return format_table(
        ["Benchmark", "% Fast Xacts", "Fast Avg RS", "Fast Avg WS",
         "Fast Avg Dur", "SW Avg RS", "SW Avg WS", "SW Avg Dur",
         "SW Release (cyc)", "Log Stalls (%)", "Aborts (cause)"],
        [
            (r.benchmark, round(r.fast_pct, 1),
             round(r.fast_avg_read_set, 1), round(r.fast_avg_write_set, 1),
             round(r.fast_avg_duration), round(r.sw_avg_read_set, 1),
             round(r.sw_avg_write_set, 1), round(r.sw_avg_duration),
             round(r.sw_release_cycles), round(r.log_stall_pct, 2),
             _abort_cell(r))
            for r in rows
        ],
        title="Table 6. TokenTM Specific Overheads",
    )


def format_speedup_figure(series_list, title: str) -> str:
    """Figures 1/5: speedups (normalized) as a grouped bar chart."""
    groups: Dict[str, Dict[str, float]] = {}
    for series in series_list:
        groups[series.workload] = {
            variant: est.mean for variant, est in series.speedups.items()
        }
    return format_bar_chart(groups, title)
