"""Long-running critical section analysis (the paper's Table 1).

The DTrace substitute: walks a lock-based workload trace, carves out
critical sections (LOCK..UNLOCK regions), classifies as *long-running*
those that block in a system call (the paper also counts context
switches, which our traces express as blocking syscalls), and reports
the Table 1 columns — average LCS duration, maximum LCS duration, and
the percentage of total execution time spent in LCS.

The walk is static (no contention model): the applications the paper
measured are dominated by uncontended critical-section time, and
Table 1's point is the *durations*, not lock contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.workloads.lockapps import CYCLES_PER_MS
from repro.workloads.trace import (
    OP_COMPUTE,
    OP_LOCK,
    OP_NT_READ,
    OP_NT_WRITE,
    OP_SYSCALL,
    OP_UNLOCK,
    WorkloadTrace,
)

#: Nominal cycles charged per memory access in the static walk.
ACCESS_COST = 2


@dataclass
class CriticalSection:
    """One LOCK..UNLOCK region found in a trace."""

    thread_id: int
    lock_id: int
    duration_cycles: int
    blocking: bool  # made a blocking syscall (or context-switched)


@dataclass
class LcsReport:
    """Table 1 row for one application."""

    name: str
    sections: List[CriticalSection] = field(default_factory=list)
    total_cycles: int = 0

    @property
    def lcs(self) -> List[CriticalSection]:
        """Only the long-running (blocking) critical sections."""
        return [s for s in self.sections if s.blocking]

    @property
    def avg_lcs_ms(self) -> float:
        lcs = self.lcs
        if not lcs:
            return 0.0
        return (sum(s.duration_cycles for s in lcs)
                / len(lcs) / CYCLES_PER_MS)

    @property
    def max_lcs_ms(self) -> float:
        lcs = self.lcs
        if not lcs:
            return 0.0
        return max(s.duration_cycles for s in lcs) / CYCLES_PER_MS

    @property
    def lcs_time_percent(self) -> float:
        if not self.total_cycles:
            return 0.0
        lcs_cycles = sum(s.duration_cycles for s in self.lcs)
        return 100.0 * lcs_cycles / self.total_cycles

    def row(self) -> Dict[str, float]:
        """Table 1 columns as a dict."""
        return {
            "benchmark": self.name,
            "avg_lcs_ms": self.avg_lcs_ms,
            "max_lcs_ms": self.max_lcs_ms,
            "lcs_time_percent": self.lcs_time_percent,
        }


def analyze_lock_trace(trace: WorkloadTrace) -> LcsReport:
    """Run the critical-section analysis over one application trace.

    Nested locks contribute to the innermost open section only at the
    point of closure — the region of the *outermost* lock spans all of
    them, matching how DTrace attributes time to each lock hold.
    """
    report = LcsReport(name=trace.name)
    for thread in trace.threads:
        open_sections: List[CriticalSection] = []
        for opcode, arg in thread.ops:
            cost = 0
            if opcode in (OP_COMPUTE, OP_SYSCALL):
                cost = arg
            elif opcode in (OP_NT_READ, OP_NT_WRITE):
                cost = ACCESS_COST
            report.total_cycles += cost
            for section in open_sections:
                section.duration_cycles += cost
                if opcode == OP_SYSCALL:
                    section.blocking = True
            if opcode == OP_LOCK:
                open_sections.append(
                    CriticalSection(thread.thread_id, arg, 0, False)
                )
            elif opcode == OP_UNLOCK:
                section = open_sections.pop()
                report.sections.append(section)
    return report


def table1(traces: Dict[str, WorkloadTrace]) -> List[Dict[str, float]]:
    """Table 1 rows for a set of application traces."""
    return [analyze_lock_trace(trace).row()
            for trace in traces.values()]
