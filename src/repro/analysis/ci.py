"""Confidence intervals for perturbed simulation runs.

The paper runs multiple pseudo-randomly perturbed simulations and
reports 95% confidence intervals on performance results; this module
provides the same aggregation for our perturbed-seed runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

# Two-sided 97.5% Student-t quantiles for small sample sizes
# (degrees of freedom 1..30); beyond that the normal 1.96 is used.
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
]


def t_quantile_975(dof: int) -> float:
    """Two-sided 95% Student-t critical value."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if dof <= len(_T_975):
        return _T_975[dof - 1]
    return 1.96


@dataclass(frozen=True)
class Estimate:
    """A mean with its 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def confidence_interval(samples: Sequence[float]) -> Estimate:
    """Mean and 95% CI half-width of a sample set."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return Estimate(mean, 0.0, 1)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(var / n)
    return Estimate(mean, t_quantile_975(n - 1) * sem, n)
