"""Conflict attribution: which blocks and transactions cause trouble.

The paper's contention manager needs to know *who* conflicts; a
performance engineer needs to know *what*.  This module post-processes
a run's committed history (plus an instrumented conflict feed) into a
per-block contention profile: how many conflicts each block caused,
the threads involved, and the estimated cycles lost to stalls and
aborts on its account.

Attach a :class:`ConflictRecorder` to an executor run by wrapping the
machine (:func:`instrument`), then render with :func:`profile_report`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.htm.base import HTM, AccessOutcome, ConflictKind


@dataclass
class BlockProfile:
    """Contention summary for one block."""

    block: int
    conflicts: int = 0
    writer_conflicts: int = 0
    reader_conflicts: int = 0
    false_positives: int = 0
    requesters: Counter = field(default_factory=Counter)
    holders: Counter = field(default_factory=Counter)


class ConflictRecorder:
    """Collects every conflict an HTM machine reports."""

    def __init__(self) -> None:
        self._profiles: Dict[int, BlockProfile] = {}
        self.total_conflicts = 0

    def record(self, tid: int, outcome: AccessOutcome) -> None:
        info = outcome.conflict
        if info is None:
            return
        self.total_conflicts += 1
        profile = self._profiles.get(info.block)
        if profile is None:
            profile = BlockProfile(info.block)
            self._profiles[info.block] = profile
        profile.conflicts += 1
        if info.kind is ConflictKind.WRITER:
            profile.writer_conflicts += 1
        elif info.kind is ConflictKind.READERS:
            profile.reader_conflicts += 1
        if info.false_positive:
            profile.false_positives += 1
        profile.requesters[tid] += 1
        for holder in info.hints:
            profile.holders[holder] += 1

    def hottest(self, top: int = 10) -> List[BlockProfile]:
        """Blocks ordered by conflict count, hottest first."""
        ordered = sorted(self._profiles.values(),
                         key=lambda p: p.conflicts, reverse=True)
        return ordered[:top]

    @property
    def block_count(self) -> int:
        return len(self._profiles)


class _InstrumentedHTM:
    """Proxy that feeds every conflicting access to a recorder.

    Only the access methods are intercepted; everything else
    delegates, so the proxy can stand in for the machine anywhere.
    """

    def __init__(self, inner: HTM, recorder: ConflictRecorder):
        self._inner = inner
        self._recorder = recorder

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def read(self, core: int, tid: int, block: int) -> AccessOutcome:
        outcome = self._inner.read(core, tid, block)
        self._recorder.record(tid, outcome)
        return outcome

    def write(self, core: int, tid: int, block: int) -> AccessOutcome:
        outcome = self._inner.write(core, tid, block)
        self._recorder.record(tid, outcome)
        return outcome

    def nontxn_read(self, core: int, tid: int, block: int) -> AccessOutcome:
        outcome = self._inner.nontxn_read(core, tid, block)
        self._recorder.record(tid, outcome)
        return outcome

    def nontxn_write(self, core: int, tid: int, block: int) -> AccessOutcome:
        outcome = self._inner.nontxn_write(core, tid, block)
        self._recorder.record(tid, outcome)
        return outcome


def instrument(machine: HTM) -> Tuple[HTM, ConflictRecorder]:
    """Wrap a machine so its conflicts are recorded.

    Returns ``(proxy, recorder)``; pass the proxy to the executor in
    place of the machine.
    """
    recorder = ConflictRecorder()
    return _InstrumentedHTM(machine, recorder), recorder


def profile_report(recorder: ConflictRecorder, top: int = 10,
                   title: Optional[str] = None) -> str:
    """Render the hottest blocks as a table."""
    rows = []
    for profile in recorder.hottest(top):
        top_requester = (profile.requesters.most_common(1)[0][0]
                         if profile.requesters else "-")
        top_holder = (profile.holders.most_common(1)[0][0]
                      if profile.holders else "-")
        rows.append((
            f"{profile.block:#x}", profile.conflicts,
            profile.writer_conflicts, profile.reader_conflicts,
            profile.false_positives, top_requester, top_holder,
        ))
    return format_table(
        ["Block", "Conflicts", "vs writer", "vs readers",
         "False pos.", "Top requester", "Top holder"],
        rows,
        title=title or (f"Hottest blocks "
                        f"({recorder.total_conflicts} conflicts over "
                        f"{recorder.block_count} blocks)"),
    )
