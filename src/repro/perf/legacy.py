"""The pre-optimization interpreter loop, kept as a benchmark baseline.

:class:`LegacyExecutor` overrides the executor's quantum loop with a
faithful copy of the original implementation: an ``if``/``elif``
opcode chain, a property-based doom check, per-operation bus and
bounds lookups, and an unconditional history call on every access.
``repro bench`` runs the same trace through both loops and reports
the ops/sec ratio, so the interpreter speedup is measured against the
real former code rather than a synthetic strawman.

The same role is played for the memory system by
:func:`unfiltered_memory_system`: a machine with the PR's access
filters disabled, which ``repro bench``'s memory-stack
microbenchmark times against the filtered default (and whose
statistics the filtered run must match exactly) — and for the faults
subsystem by :class:`PreFaultsExecutor`: the scheduling loop exactly
as it was before quantum-boundary fault hooks existed, which the
``faultbench`` section times against the shipped NULL-injector path
to prove the disabled subsystem costs nothing.

Nothing outside the benchmark harness should use this module.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.coherence.protocol import MemorySystem
from repro.obs.events import AbortCause
from repro.runtime.executor import Executor, _Thread
from repro.workloads.trace import (
    OP_BEGIN,
    OP_COMMIT,
    OP_COMPUTE,
    OP_LOCK,
    OP_NT_READ,
    OP_NT_WRITE,
    OP_READ,
    OP_SYSCALL,
    OP_UNLOCK,
    OP_WRITE,
)


class LegacyExecutor(Executor):
    """Executor with the original (pre-dispatch-table) hot loop."""

    def _run_quantum(self, thread: _Thread) -> None:
        deadline = thread.clock + self._quantum
        bus = self._bus
        while not thread.done and thread.clock < deadline:
            if bus.enabled:
                bus.now = thread.clock
            if thread.doomed:
                self._abort(thread, AbortCause.CM_KILL)
                continue
            if thread.pc >= len(thread.ops):
                thread.done = True
                return
            opcode, arg = thread.ops[thread.pc]
            if opcode == OP_COMPUTE or opcode == OP_SYSCALL:
                thread.clock += arg
                thread.pc += 1
            elif opcode == OP_READ:
                self._legacy_txn_access(thread, arg, is_write=False)
            elif opcode == OP_WRITE:
                self._legacy_txn_access(thread, arg, is_write=True)
            elif opcode == OP_BEGIN:
                self._begin(thread)
            elif opcode == OP_COMMIT:
                self._commit(thread)
            elif opcode == OP_NT_READ:
                self._nontxn_access(thread, arg, is_write=False)
            elif opcode == OP_NT_WRITE:
                self._nontxn_access(thread, arg, is_write=True)
            elif opcode == OP_LOCK:
                if not self._lock(thread, arg):
                    return  # blocked; re-queued with a later clock
            elif opcode == OP_UNLOCK:
                self._unlock(thread, arg)
            else:  # pragma: no cover - validate_trace prevents this
                raise SimulationError(f"unknown opcode {opcode}")

    def _legacy_txn_access(self, thread: _Thread, block: int,
                           is_write: bool) -> None:
        tid, core = thread.tid, thread.core
        grant_point = thread.clock  # isolation starts at the grant
        if is_write:
            outcome = self._htm.write(core, tid, block)
        else:
            outcome = self._htm.read(core, tid, block)
        thread.clock += outcome.latency
        if outcome.granted:
            thread.stalls = 0
            self._history.access(tid, block, is_write, grant_point)
            thread.pc += 1
            return
        self._resolve_conflict(thread, outcome.conflict)


class PreFaultsExecutor(Executor):
    """Executor with the pre-faults dedicated scheduling loop.

    A faithful copy of ``_run_dedicated`` from before the faults
    subsystem added its quantum-boundary hook: no ``faults_on``
    hoist, no boundary call.  The ``faultbench`` section runs the
    same trace through this and the shipped executor (whose injector
    and monitor are the NULL defaults) — the ratio is the true cost
    of the disabled faults path.  Dedicated mode only; the benchmark
    trace never time-shares.
    """

    def _run_dedicated(self) -> None:
        heap = [(t.clock, t.tid) for t in self._threads if not t.done]
        heapq.heapify(heap)
        while heap:
            _, tid = heapq.heappop(heap)
            thread = self._by_tid[tid]
            if thread.done:
                continue
            self._run_quantum(thread)
            if not thread.done:
                heapq.heappush(heap, (thread.clock, thread.tid))


def unfiltered_memory_system(
        config: Optional[SystemConfig] = None, **kwargs) -> MemorySystem:
    """A memory system with the access fast path disabled.

    This is the pre-filter baseline for the memory-stack
    microbenchmark: every access walks the full protocol path
    (lookup, hit/miss classification, result allocation).  Simulated
    outcomes are identical to the filtered default — only the wall
    clock differs.
    """
    return MemorySystem(config or SystemConfig(), fast_path=False, **kwargs)
