"""Performance engine: parallel grid execution, result caching, and
benchmarking.

The paper's evaluation grid is embarrassingly parallel — every cell
(workload, variant, seed) runs on a fresh simulated machine — so this
package fans cells out over worker processes and caches finished
cells on disk keyed by the full cell content (spec, configs, seed,
scale).  See ``docs/performance.md``.

* :mod:`repro.perf.cache` — content-hashed on-disk result cache
  (corrupt entries quarantined, never fatal);
* :mod:`repro.perf.runner` — :class:`ParallelRunner`, the grid engine;
* :mod:`repro.perf.supervise` — the supervision layer: per-cell
  timeouts, retries with backoff, failure policies, pool rebuilding,
  :class:`RunReport` failure records, the crash-safe
  :class:`CampaignJournal`, and the SIGINT/SIGTERM flush handler
  (``docs/robustness.md``, "Surviving the host");
* :mod:`repro.perf.bench` — the ``repro bench`` harness that writes
  ``BENCH_perf.json``;
* :mod:`repro.perf.legacy` — the pre-optimization interpreter loop,
  kept as the microbenchmark baseline.
"""

from repro.perf.cache import ResultCache, cell_key
from repro.perf.runner import CellSpec, ParallelRunner, grid_specs
from repro.perf.supervise import (
    CampaignJournal,
    CellFailure,
    RunReport,
    SupervisorConfig,
    flush_on_signals,
)

__all__ = [
    "CampaignJournal",
    "CellFailure",
    "CellSpec",
    "ParallelRunner",
    "ResultCache",
    "RunReport",
    "SupervisorConfig",
    "cell_key",
    "flush_on_signals",
    "grid_specs",
]
