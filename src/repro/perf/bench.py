"""``repro bench``: the repo's performance benchmark harness.

Measures two things and writes both to ``BENCH_perf.json``:

* **grid throughput** — wall-clock and simulated-ops/sec for every
  cell of an evaluation grid, run through the
  :class:`~repro.perf.runner.ParallelRunner`;
* **interpreter microbenchmark** — the optimized executor hot loop
  vs. the faithful pre-optimization copy in
  :mod:`repro.perf.legacy`, on an identical conflict-free trace, so
  the loop speedup is isolated from simulation content;
* **memory-stack microbenchmark** — the access fast path (coherence
  hit filter + HTM read/write-set short-circuit) vs. the unfiltered
  machine (:func:`repro.perf.legacy.unfiltered_memory_system`) on an
  identical repeat-access-heavy transaction mix, with an
  identical-statistics cross-check;
* **faults-path microbenchmark** — the shipped executor (NULL
  injector/monitor defaults) vs. the frozen pre-faults scheduling
  loop (:class:`repro.perf.legacy.PreFaultsExecutor`), proving the
  disabled faults subsystem is zero-cost (CI asserts the overhead
  stays under 2%);
* **kernel microbenchmark** — every registered hot-loop backend
  (``interp`` / ``batch`` / ``spec``) on two contrasting traces: the
  compute-heavy large-transaction trace (where run-length/bisect
  advancement wins) and a memory-heavy short-run trace (where the
  spec backend's fused generated loop wins), with identical-
  statistics cross-checks (CI asserts ``spec`` >= 3x ``interp`` on
  the compute trace and >= 1.25x ``batch`` on the memory trace).

Schema of ``BENCH_perf.json`` (``repro-bench-perf/7``, documented in
``docs/performance.md``):

``schema``        schema identifier string;
``config``        seed / workers / quick flag / fast_path /
                  per-workload scales;
``grid``          ``wall_seconds`` for the whole grid plus ``cells``,
                  each with workload, variant, seed, scale,
                  trace_ops, wall_seconds (null when the cache
                  answered), sim_ops_per_sec, makespan, commits,
                  aborts, cache_hit;
``totals``        summed trace_ops / wall and aggregate ops/sec;
``microbench``    trace_ops, rounds, legacy/optimized ops-per-sec
                  and their ratio (``speedup``);
``membench``      accesses, rounds, unfiltered/filtered ops-per-sec,
                  ``speedup``, ``identical_stats``, and the filtered
                  run's fast-path counter snapshot (``fastpath``);
``faultbench``    trace_ops, rounds, prefaults/null ops-per-sec,
                  ``overhead`` (null wall / pre-faults wall) and an
                  identical-statistics cross-check;
``kernelbench``   rounds, quantum, the kernel roster, ``numpy`` /
                  ``native`` availability, a ``traces`` map with one
                  entry per micro-trace (``compute`` and ``memory``:
                  per-kernel ops/sec, ``speedup_vs_interp`` medians
                  of paired per-round ratios, ``spec_vs_batch``, an
                  identical-statistics cross-check), the headline
                  ``speedup`` (compute-trace spec/interp, the
                  regression-checked ratio) and the batch/spec
                  telemetry snapshots (``kernel``);
``parallel``      optional serial-vs-parallel wall comparison
                  (``--compare-serial``) with a ``byte_identical``
                  stats check;
``metrics``       the runner's metrics-registry snapshot (cache
                  hits/misses, cells simulated, workers) merged with
                  the membench's ``perf.fastpath.*`` counters and the
                  kernelbench's ``kernels.*`` counters.

Simulated-ops/sec counts *trace* operations retired per wall second;
aborted-and-retried work is not double-counted, so the number is a
throughput of useful simulation progress.

``--baseline FILE`` compares a fresh payload against a committed one
via :func:`check_regression`: the *speedup ratios* (optimized/legacy,
filtered/unfiltered) are compared rather than absolute ops/sec, so
the check tolerates slow CI machines and only fails when an
optimization itself eroded.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import Cell
from repro.common.config import HTMConfig, RunConfig, SystemConfig
from repro.common.vector import HAVE_NUMPY
from repro.common.errors import ConfigError, IncompleteGridError
from repro.coherence.protocol import MemorySystem
from repro.htm import make_htm
from repro.kernels import resolve_kernel_name
from repro.obs.metrics import publish_fastpath, publish_kernels
from repro.perf.cache import ResultCache
from repro.perf.legacy import (
    LegacyExecutor,
    PreFaultsExecutor,
    unfiltered_memory_system,
)
from repro.perf.runner import CellSpec, ParallelRunner
from repro.perf.supervise import FAIL_FAST, SupervisorConfig
from repro.runtime.executor import Executor
from repro.traces.workload import TraceWorkloadSpec, fixture_workloads
from repro.workloads import tm_workloads
from repro.workloads.trace import (
    OP_BEGIN,
    OP_COMMIT,
    OP_COMPUTE,
    OP_READ,
    OP_WRITE,
    ThreadTrace,
    WorkloadTrace,
)

#: Identifier written into every BENCH_perf.json.
#: /2: added the memory-stack microbenchmark (``membench``), the
#: ``config.fast_path`` flag, and ``perf.fastpath.*`` metrics.
#: /3: added the faults-path microbenchmark (``faultbench``).
#: /4: ``grid`` grew a ``report`` (the runner's supervision
#: RunReport: retries, timeouts, worker deaths, per-cell failures)
#: and cell rows may carry ``failed: true`` with null stats when the
#: grid ran under ``--failure-policy continue``.
#: /5: the grid gained replayed-trace cells (the committed fixture
#: traces, transactified, at scale 1.0) and ``config.traces`` lists
#: them; trace rows carry ``trace: true``.
#: /6: added the per-kernel comparison section (``kernelbench``:
#: interp vs batch SimulationKernel backends, per-kernel ops/sec and
#: the CI-enforced speedup), ``config.kernel``, and ``kernels.*``
#: metrics.
#: /7: ``kernelbench`` compares *every* registered backend (now
#: including ``spec``) on two micro-traces — the compute-heavy trace
#: and a new memory-heavy short-run trace — under a ``traces`` map;
#: the headline ``speedup`` became compute-trace spec/interp and the
#: section gained ``native`` plus per-backend telemetry snapshots.
#: /8: dropped the volatile ``unix_time`` field.  Timestamps belong
#: to the landscape run row (``--landscape``), not the committed
#: artifact: regenerating BENCH_perf.json on an unchanged tree now
#: diffs only in measured timings, never in when it was measured.
BENCH_SCHEMA = "repro-bench-perf/8"

#: Default output path, at the repo root like the other BENCH files.
DEFAULT_OUT = "BENCH_perf.json"

#: Per-workload scales for the full grid — the Figure 5 operating
#: point (matches ``repro figure5`` and benchmarks/conftest.py).
GRID_SCALES: Dict[str, float] = {
    "Barnes": 0.2, "Cholesky": 0.01, "Radiosity": 0.02,
    "Raytrace": 0.01, "Delaunay": 0.015, "Genome": 0.004,
    "Vacation-Low": 0.02, "Vacation-High": 0.02,
}

#: The full-grid variant set (Figure 5's five machines).
GRID_VARIANTS = (
    "LogTM-SE_2xH3", "LogTM-SE_4xH3", "LogTM-SE_Perf",
    "TokenTM", "TokenTM_NoFast",
)

#: ``--quick`` subset: two contrasting workloads on two variants at
#: reduced scale, sized for a CI smoke job.
QUICK_WORKLOADS = ("Cholesky", "Vacation-Low")
QUICK_VARIANTS = ("TokenTM", "LogTM-SE_4xH3")
QUICK_SCALE_FACTOR = 0.25

#: Fixture event traces replayed as grid cells (``--quick`` keeps one).
#: Traces run at their recorded size; ``scale`` is pinned to 1.0.
QUICK_TRACE_FIXTURES = ("mutex_ring",)

#: Microbenchmark trace shape (per thread): transactions of a few
#: private accesses followed by a long COMPUTE run — the opcode mix
#: that dominates real traces, weighted so the interpreter loop (not
#: the HTM access path, which both executors share) is what's timed.
MICRO_THREADS = 4
MICRO_TXNS = 60
MICRO_COMPUTES = 400
MICRO_COMPUTE_CYCLES = 2


def micro_trace(threads: int = MICRO_THREADS, txns: int = MICRO_TXNS,
                computes: int = MICRO_COMPUTES,
                compute_cycles: int = MICRO_COMPUTE_CYCLES) -> WorkloadTrace:
    """Deterministic conflict-free trace for the loop microbenchmark.

    Every thread touches only its own block range, so the run is
    abort-free and both executors retire the identical op stream.
    """
    thread_traces = []
    for tid in range(threads):
        base = tid << 12  # disjoint per-thread block ranges
        ops = []
        for t in range(txns):
            ops.append((OP_BEGIN, 0))
            ops.append((OP_READ, base + (t % 64)))
            ops.append((OP_READ, base + ((t + 7) % 64)))
            ops.append((OP_WRITE, base + ((t + 3) % 64)))
            ops.extend([(OP_COMPUTE, compute_cycles)] * computes)
            ops.append((OP_COMMIT, 0))
            ops.append((OP_COMPUTE, compute_cycles))
        thread_traces.append(ThreadTrace(tid, ops))
    return WorkloadTrace("Microbench", thread_traces,
                         params={"threads": threads, "txns": txns,
                                 "computes": computes})


def _grid_cells_payload(specs: Sequence[CellSpec], cells: Sequence[Cell],
                        walls: Sequence[Optional[float]]) -> List[Dict]:
    rows = []
    for spec, cell, wall in zip(specs, cells, walls):
        if cell is None:  # failed under --failure-policy continue
            rows.append({
                "workload": spec.workload.name,
                "variant": spec.variant,
                "seed": spec.seed,
                "scale": spec.scale,
                "failed": True,
            })
            continue
        stats = cell.stats
        ops = int(stats.machine.get("_trace_ops", 0))
        row = {
            "workload": spec.workload.name,
            "variant": spec.variant,
            "seed": spec.seed,
            "scale": spec.scale,
            "trace_ops": ops,
            "wall_seconds": wall,
            "sim_ops_per_sec": (ops / wall) if wall else None,
            "makespan": stats.makespan,
            "commits": stats.commits,
            "aborts": stats.aborts,
            "cache_hit": wall is None,
        }
        if isinstance(spec.workload, TraceWorkloadSpec):
            row["trace"] = True
        rows.append(row)
    return rows


def run_grid(specs: Sequence[CellSpec], workers: int = 0,
             cache: Optional[ResultCache] = None,
             supervisor: Optional[SupervisorConfig] = None,
             recorder=None):
    """Run a grid through the runner.

    Returns ``(grid_payload, metrics_snapshot)``.  Under the
    ``continue`` failure policy an incomplete grid does not raise:
    failed cells are marked in the payload and the supervision
    :class:`~repro.perf.supervise.RunReport` lands in
    ``grid["report"]`` — ``repro bench`` surfaces it and exits
    nonzero.  ``fail_fast`` (the default) still propagates
    :class:`~repro.common.errors.IncompleteGridError`, with the pool
    reaped either way.  ``recorder`` threads a landscape
    :class:`~repro.landscape.store.RunRecorder` through to the runner
    so every cell becomes a ledger entry.
    """
    with ParallelRunner(workers=workers, cache=cache,
                        supervisor=supervisor,
                        recorder=recorder) as runner:
        start = time.perf_counter()
        try:
            cells = runner.run_cells(list(specs))
        except IncompleteGridError as exc:
            if runner.supervisor.failure_policy == FAIL_FAST:
                raise
            cells = exc.results
        wall = time.perf_counter() - start
        payload = {
            "wall_seconds": wall,
            "cells": _grid_cells_payload(specs, cells,
                                         runner.last_wall_seconds),
            "report": runner.last_report.to_dict(),
        }
        return payload, runner.metrics.snapshot()


def compare_serial_parallel(specs: Sequence[CellSpec],
                            workers: int) -> Dict:
    """Time the same (uncached) grid serially and with ``workers``.

    Also cross-checks that both runs produced identical statistics —
    the determinism contract the parallel engine must keep.
    """
    with ParallelRunner(workers=0) as serial_runner:
        start = time.perf_counter()
        serial_cells = serial_runner.run_cells(list(specs))
        serial_wall = time.perf_counter() - start
    with ParallelRunner(workers=workers) as runner:
        start = time.perf_counter()
        parallel_cells = runner.run_cells(list(specs))
        parallel_wall = time.perf_counter() - start
    identical = all(
        a.stats.snapshot() == b.stats.snapshot()
        for a, b in zip(serial_cells, parallel_cells)
    )
    return {
        "cells": len(specs),
        "workers": workers,
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall else None,
        "byte_identical": identical,
    }


# ----------------------------------------------------------------------
# Interpreter microbenchmark
# ----------------------------------------------------------------------

def _micro_run(executor_cls, trace, seed: int):
    system = SystemConfig()
    htm_cfg = HTMConfig()
    machine = make_htm("TokenTM", MemorySystem(system), htm_cfg)
    executor = executor_cls(
        machine, trace, RunConfig(system=system, htm=htm_cfg, seed=seed),
        validate=False, track_history=False,
    )
    start = time.perf_counter()
    result = executor.run()
    return time.perf_counter() - start, result.stats


def microbench(seed: int = 2008, rounds: int = 3,
               scale: float = 1.0) -> Dict:
    """Optimized vs. legacy hot loop on one conflict-free trace.

    Fresh machines each round; best-of-``rounds`` wall time on both
    sides.  The two loops must produce identical statistics (asserted
    here), so the comparison times interpretation, not behaviour.
    ``scale`` multiplies the per-thread transaction count.
    """
    trace = micro_trace(txns=max(1, int(MICRO_TXNS * scale)))
    ops = trace.total_ops()
    best_legacy = best_new = float("inf")
    legacy_stats = new_stats = None
    for _ in range(max(1, rounds)):
        wall, stats = _micro_run(LegacyExecutor, trace, seed)
        if wall < best_legacy:
            best_legacy, legacy_stats = wall, stats
        wall, stats = _micro_run(Executor, trace, seed)
        if wall < best_new:
            best_new, new_stats = wall, stats
    if legacy_stats.snapshot() != new_stats.snapshot():
        raise AssertionError(
            "legacy and optimized loops diverged on the microbenchmark"
        )
    legacy_ops = ops / best_legacy
    new_ops = ops / best_new
    return {
        "trace_ops": ops,
        "rounds": rounds,
        "legacy_wall_seconds": best_legacy,
        "optimized_wall_seconds": best_new,
        "legacy_ops_per_sec": legacy_ops,
        "optimized_ops_per_sec": new_ops,
        "speedup": new_ops / legacy_ops,
    }


# ----------------------------------------------------------------------
# Memory-stack microbenchmark
# ----------------------------------------------------------------------

#: Membench shape: a few concurrent large transactions, each looping
#: over its (private) working set — the paper's repeat-access-heavy
#: profile that the fast path targets.
MEM_CORES = 4
MEM_BLOCKS = 48
MEM_REPEATS = 40


def _membench_run(fast_path: bool, cores: int, blocks: int,
                  repeats: int):
    """Drive TokenTM directly with a repeat-access transaction mix.

    Returns ``(wall, accesses, protocol_stats, fastpath_stats)``.
    The access sequence is identical for both modes, so the protocol
    statistics must match exactly (asserted by :func:`membench`).
    """
    system = SystemConfig()
    if fast_path:
        mem = MemorySystem(system)
    else:
        mem = unfiltered_memory_system(system)
    machine = make_htm("TokenTM", mem, HTMConfig())
    accesses = 0
    start = time.perf_counter()
    for core in range(cores):
        machine.begin(core, core)
    for _ in range(repeats):
        for core in range(cores):
            base = (core + 1) << 12  # disjoint, clear of the log region
            for b in range(blocks):
                block = base + b
                machine.read(core, core, block)
                accesses += 1
                if b & 1:
                    machine.write(core, core, block)
                    accesses += 1
    for core in range(cores):
        machine.commit(core, core)
    wall = time.perf_counter() - start
    return wall, accesses, mem.stats.snapshot(), mem.fastpath.snapshot()


def membench(rounds: int = 3, cores: int = MEM_CORES,
             blocks: int = MEM_BLOCKS, repeats: int = MEM_REPEATS) -> Dict:
    """Filtered vs. unfiltered memory stack on one access mix.

    Fresh machines each round; best-of-``rounds`` wall time on both
    sides.  Both machines must retire identical protocol statistics
    (asserted), so the comparison times the simulator's access path,
    not a behavioural difference.
    """
    best_fast = best_slow = float("inf")
    fast_stats = slow_stats = None
    fastpath = None
    accesses = 0
    for _ in range(max(1, rounds)):
        wall, accesses, stats, fp = _membench_run(
            True, cores, blocks, repeats)
        if wall < best_fast:
            best_fast, fast_stats, fastpath = wall, stats, fp
        wall, accesses, stats, _fp = _membench_run(
            False, cores, blocks, repeats)
        if wall < best_slow:
            best_slow, slow_stats = wall, stats
    if fast_stats != slow_stats:
        raise AssertionError(
            "filtered and unfiltered memory systems diverged "
            "on the membench access mix"
        )
    fast_ops = accesses / best_fast
    slow_ops = accesses / best_slow
    return {
        "accesses": accesses,
        "rounds": rounds,
        "unfiltered_wall_seconds": best_slow,
        "filtered_wall_seconds": best_fast,
        "unfiltered_ops_per_sec": slow_ops,
        "filtered_ops_per_sec": fast_ops,
        "speedup": fast_ops / slow_ops,
        "identical_stats": True,
        "fastpath": fastpath,
    }


# ----------------------------------------------------------------------
# Faults-path microbenchmark
# ----------------------------------------------------------------------

def faultbench(seed: int = 2008, rounds: int = 41,
               scale: float = 0.35) -> Dict:
    """Shipped NULL-injector path vs. the pre-faults scheduling loop.

    Both arms run the identical conflict-free trace through the same
    ``_run_quantum``; the only difference is the quantum-boundary
    fault hook (one hoisted bool plus one branch per quantum) that
    :class:`~repro.perf.legacy.PreFaultsExecutor` predates.  The two
    runs must produce identical statistics (asserted), and CI asserts
    ``overhead`` stays under 1.02 — the disabled faults subsystem
    changes throughput by less than 2%.

    ``overhead`` is the *median of paired per-round ratios*: the arms
    run back-to-back within each round (alternating which goes
    first), so a machine-load drift hits both sides of a pair roughly
    equally and cancels in the ratio, where a best-of-each-arm
    quotient would keep it.  Defaults favour *many short rounds* over
    few long ones — with a true overhead near zero, what the median
    needs is sample count, and the median of 41 paired ratios sits
    within a fraction of a percent run to run where a handful of long
    rounds can wander past the CI threshold on a loaded machine.
    """
    trace = micro_trace(txns=max(1, int(MICRO_TXNS * scale)))
    ops = trace.total_ops()
    _micro_run(Executor, trace, seed)  # warmup (allocator, caches)
    best_pre = best_null = float("inf")
    pre_stats = null_stats = None
    ratios = []
    for i in range(max(1, rounds)):
        order = (PreFaultsExecutor, Executor) if i % 2 == 0 \
            else (Executor, PreFaultsExecutor)
        walls = {}
        for cls in order:
            walls[cls], stats = _micro_run(cls, trace, seed)
            if cls is PreFaultsExecutor and walls[cls] < best_pre:
                best_pre, pre_stats = walls[cls], stats
            elif cls is Executor and walls[cls] < best_null:
                best_null, null_stats = walls[cls], stats
        ratios.append(walls[Executor] / walls[PreFaultsExecutor])
    if pre_stats.snapshot() != null_stats.snapshot():
        raise AssertionError(
            "NULL-injector and pre-faults loops diverged on the "
            "faultbench trace"
        )
    ratios.sort()
    mid = len(ratios) // 2
    overhead = ratios[mid] if len(ratios) % 2 else \
        (ratios[mid - 1] + ratios[mid]) / 2
    return {
        "trace_ops": ops,
        "rounds": rounds,
        "prefaults_wall_seconds": best_pre,
        "null_wall_seconds": best_null,
        "prefaults_ops_per_sec": ops / best_pre,
        "null_ops_per_sec": ops / best_null,
        "overhead": overhead,
        "identical_stats": True,
    }


# ----------------------------------------------------------------------
# Kernel microbenchmark
# ----------------------------------------------------------------------

#: Kernelbench trace shape: a handful of *large* transactions, each a
#: long run of 1-cycle COMPUTE ops — the regime the batch backend's
#: run-length advancement targets (and the paper's large-transaction
#: pitch).  Short traces with many tiny transactions spend their wall
#: time in the shared HTM access path, which both kernels execute
#: op-by-op; this shape isolates the hot loop itself.
KERNELBENCH_TXNS = 4
KERNELBENCH_COMPUTES = 20_000
KERNELBENCH_COMPUTE_CYCLES = 1

#: Scheduler quantum for the kernel comparison.  The default quantum
#: (200 cycles) bounds every COMPUTE batch at 200 ops, so quantum
#: bookkeeping — identical in both kernels — dominates the paired
#: ratio.  1000-cycle quanta match the large-transaction regime the
#: batch backend exists for; all kernels run under the same quantum,
#: and the identical-statistics assert holds regardless.
KERNELBENCH_QUANTUM = 1000

#: Memory-heavy kernelbench trace shape (per thread): transactions
#: whose body alternates granted accesses over a small private
#: working set with singleton COMPUTEs.  This is the opposite regime
#: from the compute trace: runs are short, so per-run overhead (an
#: outer-loop re-entry, a bisect for a one-op COMPUTE batch,
#: telemetry increments) is what differentiates the backends — the
#: spec kernel's fused generated leaf loop pays none of it.
KERNELBENCH_MEM_TXNS = 3
KERNELBENCH_MEM_REPEATS = 600
KERNELBENCH_MEM_BLOCKS = 8


def kernel_mem_trace(threads: int = MICRO_THREADS,
                     txns: int = KERNELBENCH_MEM_TXNS,
                     repeats: int = KERNELBENCH_MEM_REPEATS,
                     blocks: int = KERNELBENCH_MEM_BLOCKS
                     ) -> WorkloadTrace:
    """Deterministic conflict-free memory-heavy trace.

    Disjoint per-thread block ranges (clear of the log region) keep
    the run abort-free; the tiny working set makes repeat accesses
    hit the read/write-set short circuits, so the hot-loop overhead
    around each access is a large share of what is timed.
    """
    thread_traces = []
    for tid in range(threads):
        base = (tid + 1) << 12
        ops = []
        for t in range(txns):
            ops.append((OP_BEGIN, 0))
            for r in range(repeats):
                b = (t + r) % blocks
                ops.append((OP_READ, base + b))
                ops.append((OP_COMPUTE, 1))
                ops.append((OP_WRITE, base + b))
                ops.append((OP_COMPUTE, 1))
            ops.append((OP_COMMIT, 0))
        thread_traces.append(ThreadTrace(tid, ops))
    return WorkloadTrace("KernelMem", thread_traces,
                         params={"threads": threads, "txns": txns,
                                 "repeats": repeats, "blocks": blocks})


def _kernel_run(kernel: str, trace, seed: int, quantum: int):
    system = SystemConfig()
    htm_cfg = HTMConfig()
    machine = make_htm("TokenTM", MemorySystem(system), htm_cfg)
    executor = Executor(
        machine, trace,
        RunConfig(system=system, htm=htm_cfg, seed=seed, kernel=kernel),
        validate=False, track_history=False, quantum=quantum,
    )
    # The batch run is short enough that a cyclic-GC pause inherited
    # from the *previous* arm's garbage can triple its wall time and
    # wreck the paired ratio; drain and pause the collector around
    # the timed region (what ``timeit`` does by default).
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = executor.run()
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return wall, result.stats, executor.kernel_stats()


def _median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    return ordered[mid] if len(ordered) % 2 else \
        (ordered[mid - 1] + ordered[mid]) / 2


def _kernelbench_trace(trace, kernels, seed: int, rounds: int) -> Dict:
    """All registered backends on one trace, paired per round.

    Every round runs every kernel back-to-back in rotating order, so
    machine-load drift hits all arms of a pair roughly equally and
    cancels in the per-round ratios (the faultbench reasoning).  All
    backends must produce identical statistics — asserted here, the
    kernels' core contract.
    """
    ops = trace.total_ops()
    kernels = list(kernels)
    reference = kernels[0]
    _kernel_run(kernels[-1], trace, seed, KERNELBENCH_QUANTUM)  # warmup
    best = {name: float("inf") for name in kernels}
    stats = {name: None for name in kernels}
    snapshots = {}
    ratios = {name: [] for name in kernels[1:]}
    spec_vs_batch = []
    for i in range(max(1, rounds)):
        rot = i % len(kernels)
        order = kernels[rot:] + kernels[:rot]
        walls = {}
        for name in order:
            walls[name], run_stats, kstats = _kernel_run(
                name, trace, seed, KERNELBENCH_QUANTUM)
            if walls[name] < best[name]:
                best[name], stats[name] = walls[name], run_stats
                snapshots[name] = kstats
        for name in kernels[1:]:
            ratios[name].append(walls[reference] / walls[name])
        if "batch" in walls and "spec" in walls:
            spec_vs_batch.append(walls["batch"] / walls["spec"])
    reference_snapshot = stats[reference].snapshot()
    for name in kernels[1:]:
        if stats[name].snapshot() != reference_snapshot:
            raise AssertionError(
                f"{name} and {reference} kernels diverged on the "
                f"kernelbench trace {trace.name!r}"
            )
    return {
        "trace_ops": ops,
        "wall_seconds": {name: best[name] for name in kernels},
        "ops_per_sec": {name: ops / best[name] for name in kernels},
        "speedup_vs_interp": {name: _median(ratios[name])
                              for name in kernels[1:]},
        "spec_vs_batch": (_median(spec_vs_batch)
                          if spec_vs_batch else None),
        "identical_stats": True,
        "kernel": snapshots,
    }


def kernelbench(seed: int = 2008, rounds: int = 21,
                scale: float = 1.0) -> Dict:
    """Every registered :class:`~repro.kernels.base.SimulationKernel`
    backend on two contrasting micro-traces.

    The *compute* trace (large transactions, 20k-op COMPUTE runs) is
    the regime the batch/spec run-length advancement targets; CI
    asserts spec >= 3x interp there.  The *memory* trace (short
    granted-access runs interleaved with singleton COMPUTEs) times
    the per-access loop overhead instead; CI asserts spec >= 1.25x
    batch there — the specializer's fused leaf loop is what that
    ratio measures.  All backends must produce identical statistics
    on both traces (asserted).

    Like :func:`faultbench`, every ratio is the *median of paired
    per-round ratios* with rotating execution order, so machine load
    drift hits all arms of a pair and cancels, where a
    best-of-each-arm quotient would keep it.
    """
    from repro.kernels import KERNEL_NAMES

    kernels = list(KERNEL_NAMES)
    traces = {
        "compute": micro_trace(
            txns=max(1, int(KERNELBENCH_TXNS * scale)),
            computes=KERNELBENCH_COMPUTES,
            compute_cycles=KERNELBENCH_COMPUTE_CYCLES),
        "memory": kernel_mem_trace(
            repeats=max(1, int(KERNELBENCH_MEM_REPEATS * scale))),
    }
    per_trace = {
        name: _kernelbench_trace(trace, kernels, seed, rounds)
        for name, trace in traces.items()
    }
    compute = per_trace["compute"]
    spec_snapshot = compute["kernel"].get("spec") or {}
    headline = compute["speedup_vs_interp"].get(
        kernels[-1] if len(kernels) > 1 else kernels[0])
    return {
        "rounds": rounds,
        "quantum": KERNELBENCH_QUANTUM,
        "kernels": kernels,
        "numpy": HAVE_NUMPY,
        "native": bool(spec_snapshot.get("native")),
        "traces": per_trace,
        # The headline regression-checked ratio: compute-trace
        # spec/interp (the newest backend against the reference).
        "speedup": headline,
        "identical_stats": all(t["identical_stats"]
                               for t in per_trace.values()),
        "kernel": {name: snap
                   for name, snap in compute["kernel"].items()
                   if name != "interp"},
    }


#: Aliases for use inside :func:`run_bench`, whose ``membench`` /
#: ``faultbench`` / ``kernelbench`` boolean parameters shadow the
#: function names.
_membench = membench
_faultbench = faultbench
_kernelbench = kernelbench


# ----------------------------------------------------------------------
# Baseline regression check
# ----------------------------------------------------------------------

#: Sections whose ``speedup`` ratio the regression check compares.
REGRESSION_SECTIONS = ("microbench", "membench", "kernelbench")


def load_bench(path: str) -> Dict:
    """Read a BENCH_perf.json payload from disk."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def load_baseline(path: str):
    """Leniently load a ``--baseline`` file: ``(payload, problem)``.

    A baseline that is missing, unreadable, truncated, or not valid
    JSON must never traceback a bench run — the fresh results are
    still worth having.  Exactly one of the pair is None: a loadable
    baseline returns ``(payload, None)``; anything else returns
    ``(None, reason)`` for the CLI to warn with and skip the
    comparison.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return None, (f"baseline {path} unreadable "
                      f"({type(exc).__name__}: {exc}); comparison skipped")
    if not text.strip():
        return None, (f"baseline {path} is empty (truncated write?); "
                      f"comparison skipped")
    try:
        payload = json.loads(text)
    except ValueError as exc:
        return None, (f"baseline {path} is not valid JSON ({exc}); "
                      f"comparison skipped")
    if not isinstance(payload, dict):
        return None, (f"baseline {path} holds "
                      f"{type(payload).__name__}, not a bench payload "
                      f"object; comparison skipped")
    return payload, None


def check_regression(fresh: Dict, baseline: Dict,
                     tolerance: float = 0.3) -> List[str]:
    """Compare microbenchmark speedups against a committed baseline.

    Ratios (optimized/legacy, filtered/unfiltered, batch/interp) are
    compared, not absolute ops/sec: both sides of each ratio ran on the same
    machine in the same process, so wall-clock noise between the CI
    runner and the machine that produced the baseline cancels out.
    Returns a list of human-readable failures (empty = pass).
    """
    failures = []
    for section in REGRESSION_SECTIONS:
        base = (baseline.get(section) or {}).get("speedup")
        now = (fresh.get(section) or {}).get("speedup")
        if not base or not now:
            continue  # section absent on one side: nothing to compare
        drop = 1.0 - now / base
        if drop > tolerance:
            failures.append(
                f"{section} speedup fell {drop:.0%} "
                f"({base:.2f}x -> {now:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def baseline_warnings(fresh: Dict, baseline: Dict) -> List[str]:
    """Non-fatal observations about a fresh-vs-baseline comparison.

    :func:`check_regression` compares only what both payloads carry;
    this companion names what that silently skipped, so ``--baseline``
    against an older-schema file *warns* about the mismatch (and any
    section present on only one side) instead of failing on a missing
    key.  Returns human-readable warnings (empty = fully comparable).
    """
    warnings = []
    fresh_schema = fresh.get("schema")
    base_schema = baseline.get("schema")
    if fresh_schema != base_schema:
        warnings.append(
            f"schema mismatch: baseline is {base_schema!r}, this run "
            f"wrote {fresh_schema!r}; only sections present in both "
            "are compared (regenerate the baseline with "
            "`repro bench` to compare everything)"
        )
    for section in REGRESSION_SECTIONS:
        base = (baseline.get(section) or {}).get("speedup")
        now = (fresh.get(section) or {}).get("speedup")
        if base and not now:
            warnings.append(
                f"section {section!r} present in the baseline but not "
                "this run; skipped"
            )
        elif now and not base:
            warnings.append(
                f"section {section!r} present in this run but not the "
                "baseline; skipped"
            )
    return warnings


# ----------------------------------------------------------------------
# Top-level harness
# ----------------------------------------------------------------------

#: ``--only`` section names.  ``grid`` covers the cell grid (and the
#: totals/parallel blocks derived from it); the rest are the
#: microbenchmark sections.
BENCH_SECTIONS = ("grid", "microbench", "membench", "faultbench",
                  "kernelbench")


def bench_specs(quick: bool = False, seed: int = 2008,
                workload_names: Optional[Sequence[str]] = None,
                variants: Optional[Sequence[str]] = None,
                scale_factor: float = 1.0,
                fast_path: bool = True,
                traces: bool = True,
                kernel: Optional[str] = None) -> List[CellSpec]:
    """The benchmark grid as cell specs (Figure 5 grid by default).

    With ``traces`` (the default) the committed fixture event traces
    are appended as replay cells — transactified, at their recorded
    size (``scale`` pinned to 1.0, which the trace workload ignores
    but the cache key records).  ``--quick`` keeps one fixture.
    ``kernel`` picks the hot-loop backend for every cell (``None``
    defers to ``$REPRO_KERNEL``, then ``interp``).
    """
    kernel_name = resolve_kernel_name(kernel)
    registry = tm_workloads()
    if workload_names is None:
        workload_names = QUICK_WORKLOADS if quick else tuple(GRID_SCALES)
    if variants is None:
        variants = QUICK_VARIANTS if quick else GRID_VARIANTS
    if quick:
        scale_factor *= QUICK_SCALE_FACTOR
    specs = []
    for name in workload_names:
        if name not in registry:
            raise SystemExit(f"unknown workload {name!r}")
        scale = GRID_SCALES.get(name, 0.02) * scale_factor
        for variant in variants:
            specs.append(CellSpec(registry[name].spec, variant,
                                  seed=seed, scale=scale,
                                  fast_path=fast_path,
                                  kernel=kernel_name))
    if traces:
        fixtures = fixture_workloads()
        names = QUICK_TRACE_FIXTURES if quick else tuple(fixtures)
        for name in names:
            for variant in variants:
                specs.append(CellSpec(fixtures[name].spec, variant,
                                      seed=seed, scale=1.0,
                                      fast_path=fast_path,
                                      kernel=kernel_name))
    return specs


def run_bench(out: str = DEFAULT_OUT, quick: bool = False,
              seed: int = 2008, workers: int = 0,
              workload_names: Optional[Sequence[str]] = None,
              variants: Optional[Sequence[str]] = None,
              scale_factor: float = 1.0,
              cache_dir: Optional[str] = None,
              compare_serial: bool = False,
              micro: bool = True,
              micro_rounds: int = 3,
              membench: bool = True,
              faultbench: bool = True,
              kernelbench: bool = True,
              fast_path: bool = True,
              traces: bool = True,
              kernel: Optional[str] = None,
              only: Optional[Sequence[str]] = None,
              supervisor: Optional[SupervisorConfig] = None,
              landscape: Optional[str] = None) -> Dict:
    """Run the harness and write ``BENCH_perf.json``; returns payload.

    ``only`` restricts the run to the named :data:`BENCH_SECTIONS`
    (repeatable on the CLI as ``--only SECTION``); every other
    section lands as ``null`` in the payload, which the baseline
    comparison reports as a warning, not an error.

    ``landscape`` (a database path) records the whole run into the
    result landscape: a ``bench`` run row carrying the full payload
    and provenance (git rev, schema versions, kernel, seed), one work
    row per section (plus one per grid cell via the runner), each
    closed at its terminal outcome.  ``None`` (the default) keeps the
    run byte-identical to a landscape-free build.
    """
    if only:
        unknown = sorted(set(only) - set(BENCH_SECTIONS))
        if unknown:
            raise ConfigError(
                f"unknown bench section(s) {', '.join(unknown)}; "
                f"available: {', '.join(BENCH_SECTIONS)}"
            )
        selected = set(only)
        micro = micro and "microbench" in selected
        membench = membench and "membench" in selected
        faultbench = faultbench and "faultbench" in selected
        kernelbench = kernelbench and "kernelbench" in selected
        grid_on = "grid" in selected
    else:
        grid_on = True
    kernel_name = resolve_kernel_name(kernel)
    specs = bench_specs(quick=quick, seed=seed,
                        workload_names=workload_names, variants=variants,
                        scale_factor=scale_factor, fast_path=fast_path,
                        traces=traces, kernel=kernel_name)
    store = None
    recorder = None
    if landscape is not None:
        from repro.landscape.store import LandscapeStore, current_git_rev
        from repro.perf.cache import CACHE_SCHEMA

        store = LandscapeStore(landscape)
        recorder = store.begin_run(
            "bench", label=str(out), git_rev=current_git_rev(),
            cache_schema=CACHE_SCHEMA, bench_schema=BENCH_SCHEMA,
            kernel=kernel_name, seed=seed)

    def section(name, fn):
        """Ledger-wrap one section: opened at dispatch, closed at its
        terminal outcome (a crash mid-section leaves the row open for
        heal-on-reopen)."""
        if recorder is None:
            return fn()
        recorder.open("bench_section", name, seed=seed,
                      kernel=kernel_name)
        try:
            value = fn()
        except BaseException as exc:
            recorder.close_key("bench_section", name, "failed",
                               detail=f"{type(exc).__name__}: {exc}")
            raise
        recorder.close_key("bench_section", name, "ok")
        return value

    try:
        if grid_on:
            cache = ResultCache(cache_dir) if cache_dir else None
            grid, metrics = section("grid", lambda: run_grid(
                specs, workers=workers, cache=cache,
                supervisor=supervisor, recorder=recorder))
        else:
            grid, metrics = None, {}
        mem_payload = None
        if membench:
            # Deliberately NOT scaled down under --quick: the whole run
            # takes well under a second, and the filtered/unfiltered ratio
            # grows with the repeat count, so a smaller quick-mode mix
            # would sit too close to the --baseline tolerance.
            mem_payload = section(
                "membench", lambda: _membench(rounds=micro_rounds))
            metrics = dict(metrics)
            metrics.update(
                publish_fastpath(mem_payload["fastpath"]).snapshot()
            )
        kernel_payload = None
        if kernelbench:
            # Rounds follow faultbench's many-short-rounds reasoning: the
            # median of paired ratios wants sample count on a noisy host.
            kernel_payload = section(
                "kernelbench",
                lambda: _kernelbench(seed=seed,
                                     rounds=max(21, micro_rounds)))
            metrics = dict(metrics)
            reg = None
            for kname, snap in sorted(kernel_payload["kernel"].items()):
                reg = publish_kernels(kname, snap, registry=reg)
            if reg is not None:
                metrics.update(reg.snapshot())
        if grid is not None:
            total_ops = sum(c.get("trace_ops", 0) for c in grid["cells"])
            timed_walls = [c["wall_seconds"] for c in grid["cells"]
                           if c.get("wall_seconds")]
            totals = {
                "cells": len(grid["cells"]),
                "trace_ops": total_ops,
                "wall_seconds": grid["wall_seconds"],
                "sim_ops_per_sec": (total_ops / grid["wall_seconds"]
                                    if grid["wall_seconds"] else None),
                "cell_wall_seconds_sum": sum(timed_walls),
            }
            scales = {c["workload"]: c["scale"] for c in grid["cells"]}
        else:
            totals = None
            scales = None
        payload = {
            "schema": BENCH_SCHEMA,
            "python": platform.python_version(),
            "config": {
                "seed": seed,
                "workers": workers,
                "quick": quick,
                "fast_path": fast_path,
                "kernel": kernel_name,
                "cache_dir": cache_dir,
                "scales": scales,
                "traces": sorted({s.workload.name for s in specs
                                  if isinstance(s.workload,
                                                TraceWorkloadSpec)}),
            },
            "grid": grid,
            "totals": totals,
            "microbench": (section(
                "microbench",
                lambda: microbench(seed=seed, rounds=micro_rounds,
                                   scale=0.5 if quick else 1.0))
                if micro else None),
            "membench": mem_payload,
            # Not scaled down under --quick either: best-of-rounds on the
            # full trace is what keeps the 2% CI assertion noise-proof.
            "faultbench": (section(
                "faultbench",
                lambda: _faultbench(seed=seed,
                                    rounds=max(41, micro_rounds)))
                if faultbench else None),
            "kernelbench": kernel_payload,
            "parallel": (compare_serial_parallel(specs, workers)
                         if compare_serial and workers > 1 and grid_on
                         else None),
            "metrics": metrics,
        }
        Path(out).write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
    except (KeyboardInterrupt, SystemExit):
        if recorder is not None:
            recorder.finish("interrupted")
            store.close()
        raise
    except BaseException:
        if recorder is not None:
            recorder.finish("failed")
            store.close()
        raise
    if recorder is not None:
        failed = bool(((grid or {}).get("report") or {}).get("failed"))
        recorder.finish("failed" if failed else "ok",
                        metrics_snapshot=metrics, payload=payload)
        store.close()
    return payload


def format_bench_summary(payload: Dict) -> str:
    """Human-readable digest of a bench payload for the CLI."""
    lines = []
    totals = payload.get("totals")
    if totals:
        lines.append(
            f"grid: {totals['cells']} cells, "
            f"{totals['trace_ops']} trace ops "
            f"in {totals['wall_seconds']:.2f}s wall "
            f"({(totals['sim_ops_per_sec'] or 0):,.0f} ops/sec)"
        )
    else:
        lines.append("grid: skipped (--only)")
    report = (payload.get("grid") or {}).get("report") or {}
    if report.get("failed"):
        lines.append(
            f"grid INCOMPLETE: {len(report['failed'])} cells failed "
            f"({report.get('retries', 0)} retries, "
            f"{report.get('timeouts', 0)} timeouts, "
            f"{report.get('worker_deaths', 0)} worker deaths)"
        )
    micro = payload.get("microbench")
    if micro:
        lines.append(
            f"interpreter: optimized {micro['optimized_ops_per_sec']:,.0f} "
            f"ops/sec vs legacy {micro['legacy_ops_per_sec']:,.0f} "
            f"(speedup {micro['speedup']:.2f}x)"
        )
    mem = payload.get("membench")
    if mem:
        lines.append(
            f"memory stack: filtered {mem['filtered_ops_per_sec']:,.0f} "
            f"accesses/sec vs unfiltered "
            f"{mem['unfiltered_ops_per_sec']:,.0f} "
            f"(speedup {mem['speedup']:.2f}x, "
            f"identical={mem['identical_stats']})"
        )
    fb = payload.get("faultbench")
    if fb:
        lines.append(
            f"faults path: NULL {fb['null_ops_per_sec']:,.0f} ops/sec "
            f"vs pre-faults {fb['prefaults_ops_per_sec']:,.0f} "
            f"(overhead {100.0 * (fb['overhead'] - 1):+.2f}%, "
            f"identical={fb['identical_stats']})"
        )
    kb = payload.get("kernelbench")
    if kb:
        for trace_name, tr in sorted(kb["traces"].items()):
            vs_interp = ", ".join(
                f"{name} {ratio:.2f}x"
                for name, ratio in sorted(
                    tr["speedup_vs_interp"].items())
            )
            extra = ""
            if tr.get("spec_vs_batch") is not None:
                extra = f", spec/batch {tr['spec_vs_batch']:.2f}x"
            lines.append(
                f"kernels[{trace_name}]: vs interp {vs_interp}{extra} "
                f"(identical={tr['identical_stats']})"
            )
        lines.append(
            f"kernels: headline speedup {kb['speedup']:.2f}x, "
            f"numpy={kb['numpy']}, native={kb['native']}"
        )
    par = payload.get("parallel")
    if par:
        lines.append(
            f"parallel: {par['workers']} workers "
            f"{par['parallel_wall_seconds']:.2f}s vs serial "
            f"{par['serial_wall_seconds']:.2f}s "
            f"(speedup {par['speedup']:.2f}x, "
            f"identical={par['byte_identical']})"
        )
    hits = payload["metrics"].get("perf.cache_hits", {}).get("value", 0)
    if hits:
        lines.append(f"cache: {hits} hits")
    return "\n".join(lines)
