"""Parallel grid engine: fan evaluation cells out over processes.

Every cell of the paper's evaluation grid — (workload, variant,
seed) at some scale on some machine configuration — simulates on a
fresh machine with no shared state, so the grid is embarrassingly
parallel.  :class:`ParallelRunner` runs cells through a
``ProcessPoolExecutor``, preserves submission order in its results,
consults an optional :class:`~repro.perf.cache.ResultCache` before
simulating, and publishes progress/cache counters through an
:class:`~repro.obs.metrics.MetricsRegistry`:

``perf.cells``        cells requested
``perf.cache_hits``   cells served from the on-disk cache
``perf.cache_misses`` cells that had to simulate (cache attached)
``perf.simulated``    cells actually simulated
``perf.workers``      (gauge) configured worker count

Determinism: a cell's result depends only on its :class:`CellSpec`
content — the seed rides in the spec, workers receive the spec by
value, and results are reordered to submission order — so a parallel
run is byte-identical to a serial one, whatever the worker count or
completion order (asserted by ``tests/perf/test_runner.py``).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.experiments import Cell, run_cell
from repro.common.config import HTMConfig, SystemConfig
from repro.faults.monitor import InvariantMonitor
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.perf.cache import ResultCache, cell_key
from repro.workloads.base import SyntheticTxnWorkload, TxnWorkloadSpec


@dataclass(frozen=True)
class CellSpec:
    """Everything that determines one grid cell's result.

    Carries the workload *spec* (a frozen value object), not the
    generator, so the whole thing pickles cheaply to workers and
    hashes stably for the cache key.
    """

    workload: TxnWorkloadSpec
    variant: str
    seed: int = 0
    scale: float = 1.0
    threads: Optional[int] = None
    system: SystemConfig = field(default_factory=SystemConfig)
    htm: HTMConfig = field(default_factory=HTMConfig)
    #: Results are provably identical either way, but the flag stays
    #: in the cache key so a --no-fastpath verification run never
    #: gets answered from a fast-path cache entry (and vice versa).
    fast_path: bool = True
    #: Canonical JSON of the injected fault plan (None = clean run).
    #: Faults perturb results, so this is cache-key material: a chaos
    #: cell can never be answered from a clean run's entry, nor a
    #: clean cell from a chaos entry.
    faults: Optional[str] = None
    #: Run the invariant monitor (adds a ``monitor`` stats section,
    #: hence also key material).
    monitor: bool = False

    def payload(self) -> Dict[str, object]:
        """Key material for :func:`repro.perf.cache.cell_key`."""
        return {
            "workload": self.workload,
            "variant": self.variant,
            "seed": self.seed,
            "scale": self.scale,
            "threads": self.threads,
            "system": self.system,
            "htm": self.htm,
            "fast_path": self.fast_path,
            "faults": self.faults,
            "monitor": self.monitor,
        }

    def fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan this cell injects, or None for clean runs."""
        if self.faults is None:
            return None
        return FaultPlan.from_canonical(self.faults)


def grid_specs(workloads: Iterable[SyntheticTxnWorkload],
               variants: Sequence[str],
               seeds: Sequence[int] = (0,),
               scale: float = 1.0,
               threads: Optional[int] = None,
               system: Optional[SystemConfig] = None,
               htm: Optional[HTMConfig] = None,
               fast_path: bool = True,
               faults: Optional[FaultPlan] = None,
               monitor: bool = False) -> List[CellSpec]:
    """The full cross product, in deterministic (wl, seed, variant) order."""
    sys_cfg = system or SystemConfig()
    htm_cfg = htm or HTMConfig()
    plan_json = faults.canonical_json() if faults is not None \
        and faults.specs else None
    return [
        CellSpec(wl.spec, variant, seed=seed, scale=scale, threads=threads,
                 system=sys_cfg, htm=htm_cfg, fast_path=fast_path,
                 faults=plan_json, monitor=monitor)
        for wl in workloads
        for seed in seeds
        for variant in variants
    ]


def _simulate(spec: CellSpec) -> Tuple[Cell, float]:
    """Worker body: run one cell, returning (cell, wall_seconds)."""
    start = perf_counter()
    workload = SyntheticTxnWorkload(spec.workload)
    cell = run_cell(workload, spec.variant, scale=spec.scale,
                    seed=spec.seed, threads=spec.threads,
                    system=spec.system, htm_config=spec.htm,
                    fast_path=spec.fast_path,
                    faults=spec.fault_plan(),
                    monitor=InvariantMonitor() if spec.monitor else None)
    return cell, perf_counter() - start


class ParallelRunner:
    """Runs grid cells, optionally in parallel and/or cached.

    ``workers <= 1`` executes inline (no pool, no pickling) — the
    reference serial path.  ``workers > 1`` keeps a lazily created
    process pool alive across calls; use as a context manager or call
    :meth:`close` to reap it.
    """

    def __init__(self, workers: int = 0,
                 cache: Optional[ResultCache] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.gauge("perf.workers").set(workers)
        #: Wall seconds per cell of the most recent :meth:`run_cells`
        #: call (None where the cache answered); for bench harnesses.
        self.last_wall_seconds: List[Optional[float]] = []
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------

    def run_cell(self, spec: CellSpec) -> Cell:
        """Run (or fetch) a single cell."""
        return self.run_cells([spec])[0]

    def run_cells(self, specs: Sequence[CellSpec]) -> List[Cell]:
        """Run every spec; results align with ``specs`` by index."""
        results: List[Optional[Cell]] = [None] * len(specs)
        walls: List[Optional[float]] = [None] * len(specs)
        self.metrics.counter("perf.cells").inc(len(specs))
        pending: List[Tuple[int, CellSpec, Optional[str]]] = []
        for index, spec in enumerate(specs):
            key = None
            if self.cache is not None:
                key = cell_key(spec)
                hit = self.cache.get(key)
                if hit is not None:
                    self.metrics.counter("perf.cache_hits").inc()
                    results[index] = hit
                    continue
                self.metrics.counter("perf.cache_misses").inc()
            pending.append((index, spec, key))
        if pending:
            if self.workers > 1:
                self._run_pooled(pending, results, walls)
            else:
                for index, spec, key in pending:
                    cell, wall = _simulate(spec)
                    self._finish(index, spec, key, cell, wall,
                                 results, walls)
        self.last_wall_seconds = walls
        return results  # type: ignore[return-value]

    def _run_pooled(self, pending, results, walls) -> None:
        pool = self._ensure_pool()
        futures = {
            pool.submit(_simulate, spec): (index, spec, key)
            for index, spec, key in pending
        }
        waiting = set(futures)
        while waiting:
            done, waiting = wait(waiting, return_when=FIRST_COMPLETED)
            for future in done:
                index, spec, key = futures[future]
                cell, wall = future.result()
                self._finish(index, spec, key, cell, wall, results, walls)

    def _finish(self, index, spec, key, cell, wall, results, walls) -> None:
        self.metrics.counter("perf.simulated").inc()
        results[index] = cell
        walls[index] = wall
        if self.cache is not None and key is not None:
            self.cache.put(key, cell, sidecar=spec.payload())

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def default_workers() -> int:
    """Worker count for ``--workers 0``: one per available CPU."""
    return os.cpu_count() or 1
