"""Parallel grid engine: fan evaluation cells out over processes.

Every cell of the paper's evaluation grid — (workload, variant,
seed) at some scale on some machine configuration — simulates on a
fresh machine with no shared state, so the grid is embarrassingly
parallel.  :class:`ParallelRunner` runs cells through a
``ProcessPoolExecutor``, preserves submission order in its results,
consults an optional :class:`~repro.perf.cache.ResultCache` before
simulating, and publishes progress/cache counters through an
:class:`~repro.obs.metrics.MetricsRegistry`:

``perf.cells``        cells requested
``perf.cache_hits``   cells served from the on-disk cache
``perf.cache_misses`` cells that had to simulate (cache attached)
``perf.simulated``    cells actually simulated
``perf.workers``      (gauge) configured worker count

The runner is *supervised* (``docs/robustness.md``): a worker
exception, a killed worker (``BrokenProcessPool``), or a hung cell no
longer aborts the grid.  :class:`~repro.perf.supervise.SupervisorConfig`
adds per-cell wall-clock timeouts with kill-and-retry, bounded retries
with exponential backoff and deterministic jitter, pool rebuilding,
and a failure policy; failures become structured
:class:`~repro.perf.supervise.CellFailure` records collected into a
:class:`~repro.perf.supervise.RunReport`.  Supervision counters ride
the same registry:

``perf.retries``       cell attempts re-run after a failure
``perf.timeouts``      cells killed for exceeding their budget
``perf.worker_deaths`` pool breakages survived (worker OOM/SIGKILL)
``perf.cells_failed``  cells that exhausted their retry budget
``perf.cache_corrupt`` cache entries quarantined as unreadable

Determinism: a cell's result depends only on its :class:`CellSpec`
content — the seed rides in the spec, workers receive the spec by
value, and results are reordered to submission order — so a parallel
run is byte-identical to a serial one, whatever the worker count,
completion order, or retry history (asserted by
``tests/perf/test_runner.py`` and ``tests/perf/test_supervise.py``).
"""

from __future__ import annotations

import hashlib
import os
import signal as _signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.experiments import Cell, run_cell
from repro.common.config import HTMConfig, SystemConfig
from repro.common.errors import IncompleteGridError
from repro.faults.monitor import InvariantMonitor
from repro.faults.plan import FaultPlan
from repro.kernels import resolve_kernel_name
from repro.obs.metrics import PERF_RESILIENCE_COUNTERS, MetricsRegistry
from repro.perf.cache import ResultCache, cell_key
from repro.perf.supervise import (
    CONTINUE,
    DEGRADE_TO_SERIAL,
    FAIL_FAST,
    FATE_POOL_BROKEN,
    FATE_RAISED,
    FATE_TIMEOUT,
    CellFailure,
    RunReport,
    SupervisorConfig,
)
from repro.traces.workload import TraceWorkload, TraceWorkloadSpec
from repro.workloads.base import SyntheticTxnWorkload, TxnWorkloadSpec

#: Workload identity a cell can carry: a synthetic generator spec or
#: a content-hashed trace spec (path + digest + converter options).
WorkloadSpec = Union[TxnWorkloadSpec, TraceWorkloadSpec]


@dataclass(frozen=True)
class CellSpec:
    """Everything that determines one grid cell's result.

    Carries the workload *spec* (a frozen value object), not the
    generator, so the whole thing pickles cheaply to workers and
    hashes stably for the cache key.  Trace-backed cells carry a
    :class:`~repro.traces.workload.TraceWorkloadSpec`: the trace file
    digest and converter options are the cache identity, so editing a
    trace in place invalidates exactly its cells.
    """

    workload: WorkloadSpec
    variant: str
    seed: int = 0
    scale: float = 1.0
    threads: Optional[int] = None
    system: SystemConfig = field(default_factory=SystemConfig)
    htm: HTMConfig = field(default_factory=HTMConfig)
    #: Results are provably identical either way, but the flag stays
    #: in the cache key so a --no-fastpath verification run never
    #: gets answered from a fast-path cache entry (and vice versa).
    fast_path: bool = True
    #: Canonical JSON of the injected fault plan (None = clean run).
    #: Faults perturb results, so this is cache-key material: a chaos
    #: cell can never be answered from a clean run's entry, nor a
    #: clean cell from a chaos entry.
    faults: Optional[str] = None
    #: Run the invariant monitor (adds a ``monitor`` stats section,
    #: hence also key material).
    monitor: bool = False
    #: Hot-loop backend (``repro.kernels``).  Always a concrete
    #: registry name — :func:`grid_specs` resolves the env fallback so
    #: specs hash stably.  Backends are byte-identical, but the name
    #: stays key material (CACHE_SCHEMA 5) so a cross-kernel
    #: verification run never gets answered from the other backend's
    #: cache entry.
    kernel: str = "interp"

    def payload(self) -> Dict[str, object]:
        """Key material for :func:`repro.perf.cache.cell_key`."""
        return {
            "workload": self.workload,
            "variant": self.variant,
            "seed": self.seed,
            "scale": self.scale,
            "threads": self.threads,
            "system": self.system,
            "htm": self.htm,
            "fast_path": self.fast_path,
            "faults": self.faults,
            "monitor": self.monitor,
            "kernel": self.kernel,
        }

    def fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan this cell injects, or None for clean runs."""
        if self.faults is None:
            return None
        return FaultPlan.from_canonical(self.faults)


def grid_specs(workloads: Iterable[Union[SyntheticTxnWorkload,
                                         TraceWorkload]],
               variants: Sequence[str],
               seeds: Sequence[int] = (0,),
               scale: float = 1.0,
               threads: Optional[int] = None,
               system: Optional[SystemConfig] = None,
               htm: Optional[HTMConfig] = None,
               fast_path: bool = True,
               faults: Optional[FaultPlan] = None,
               monitor: bool = False,
               kernel: Optional[str] = None) -> List[CellSpec]:
    """The full cross product, in deterministic (wl, seed, variant) order."""
    sys_cfg = system or SystemConfig()
    htm_cfg = htm or HTMConfig()
    plan_json = faults.canonical_json() if faults is not None \
        and faults.specs else None
    kernel_name = resolve_kernel_name(kernel)
    return [
        CellSpec(wl.spec, variant, seed=seed, scale=scale, threads=threads,
                 system=sys_cfg, htm=htm_cfg, fast_path=fast_path,
                 faults=plan_json, monitor=monitor, kernel=kernel_name)
        for wl in workloads
        for seed in seeds
        for variant in variants
    ]


def _work_provenance(spec: CellSpec) -> Dict[str, object]:
    """Ledger provenance columns for one cell's landscape work row.

    ``fault_plan`` hashes the canonical plan JSON exactly as
    :meth:`~repro.faults.plan.FaultPlan.content_hash` does, without
    re-parsing the plan the spec already carries in canonical form.
    """
    plan_hash = None
    if spec.faults is not None:
        plan_hash = hashlib.sha256(
            spec.faults.encode("utf-8")).hexdigest()[:16]
    digest = spec.workload.digest \
        if isinstance(spec.workload, TraceWorkloadSpec) else None
    return {
        "workload": spec.workload.name,
        "variant": spec.variant,
        "seed": spec.seed,
        "fault_plan": plan_hash,
        "trace_digest": digest,
        "kernel": spec.kernel,
    }


def _simulate(spec: CellSpec) -> Tuple[Cell, float]:
    """Worker body: run one cell, returning (cell, wall_seconds)."""
    start = perf_counter()
    if isinstance(spec.workload, TraceWorkloadSpec):
        workload = TraceWorkload.from_spec(spec.workload)
    else:
        workload = SyntheticTxnWorkload(spec.workload)
    cell = run_cell(workload, spec.variant, scale=spec.scale,
                    seed=spec.seed, threads=spec.threads,
                    system=spec.system, htm_config=spec.htm,
                    fast_path=spec.fast_path,
                    faults=spec.fault_plan(),
                    monitor=InvariantMonitor() if spec.monitor else None,
                    kernel=spec.kernel)
    return cell, perf_counter() - start


class _Attempt:
    """Supervision bookkeeping for one not-yet-finished cell."""

    __slots__ = ("index", "spec", "key", "attempts", "not_before",
                 "deadline", "work_id")

    def __init__(self, index: int, spec: CellSpec, key: Optional[str]):
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts = 0       # finished attempts (all failed)
        self.not_before = 0.0   # monotonic time gating resubmission
        self.deadline = None    # monotonic per-attempt timeout
        self.work_id = None     # landscape ledger row, if recording

    def token(self) -> str:
        """Stable identity for deterministic backoff jitter."""
        return self.key if self.key is not None else (
            f"{self.spec.workload.name}/{self.spec.variant}"
            f"/s{self.spec.seed}/i{self.index}"
        )


class ParallelRunner:
    """Runs grid cells, optionally in parallel, cached, and supervised.

    ``workers <= 1`` executes inline (no pool, no pickling) — the
    reference serial path.  ``workers > 1`` keeps a lazily created
    process pool alive across calls; use as a context manager or call
    :meth:`close` to reap it.

    ``supervisor`` configures failure handling
    (:class:`~repro.perf.supervise.SupervisorConfig`); the default is
    zero-cost (no timeout, no retries, ``fail_fast``).  Whatever the
    policy, :meth:`run_cells` never returns a list with holes: if any
    cell is unfinished it raises
    :class:`~repro.common.errors.IncompleteGridError` carrying the
    :class:`~repro.perf.supervise.RunReport` (also kept on
    :attr:`last_report`) and the partial results.

    ``simulate`` swaps the worker body for a picklable callable with
    :func:`_simulate`'s signature — the fault-injection hook the
    supervision tests use; production paths leave it None.
    """

    def __init__(self, workers: int = 0,
                 cache: Optional[ResultCache] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 supervisor: Optional[SupervisorConfig] = None,
                 simulate=None, recorder=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.cache = cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.gauge("perf.workers").set(workers)
        for name in PERF_RESILIENCE_COUNTERS:
            self.metrics.counter(name)
        self.supervisor = supervisor if supervisor is not None \
            else SupervisorConfig()
        self._simulate_fn = simulate
        #: Optional :class:`~repro.landscape.store.RunRecorder`: when
        #: set, every cell becomes a ledger entry — opened at
        #: dispatch, closed at its terminal outcome, with
        #: retries/timeouts/worker deaths as non-terminal events.
        #: ``None`` (the default) keeps the runner byte-identical to
        #: a landscape-free build.
        self.recorder = recorder
        if cache is not None and cache.metrics is None:
            cache.metrics = self.metrics
        if cache is not None and recorder is not None \
                and cache.recorder is None:
            cache.recorder = recorder
        #: Wall seconds per cell of the most recent :meth:`run_cells`
        #: call (None where the cache answered); for bench harnesses.
        self.last_wall_seconds: List[Optional[float]] = []
        #: Supervision record of the most recent :meth:`run_cells`.
        self.last_report: RunReport = RunReport()
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------

    def run_cell(self, spec: CellSpec) -> Cell:
        """Run (or fetch) a single cell."""
        return self.run_cells([spec])[0]

    def run_cells(self, specs: Sequence[CellSpec]) -> List[Cell]:
        """Run every spec; results align with ``specs`` by index.

        The returned list never contains holes: a run with unfinished
        cells raises :class:`IncompleteGridError` instead (see the
        failure policy on :attr:`supervisor`).
        """
        results: List[Optional[Cell]] = [None] * len(specs)
        walls: List[Optional[float]] = [None] * len(specs)
        report = RunReport(cells=len(specs))
        self.last_report = report
        self.metrics.counter("perf.cells").inc(len(specs))
        pending: List[_Attempt] = []
        for index, spec in enumerate(specs):
            key = None
            if self.cache is not None or self.recorder is not None:
                key = cell_key(spec)
            work_id = None
            if self.recorder is not None:
                work_id = self.recorder.open(
                    "cell", key, **_work_provenance(spec))
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    self.metrics.counter("perf.cache_hits").inc()
                    results[index] = hit
                    report.completed += 1
                    if work_id is not None:
                        self.recorder.close(work_id, "ok",
                                            detail="served from cache")
                    continue
                self.metrics.counter("perf.cache_misses").inc()
            task = _Attempt(index, spec, key)
            task.work_id = work_id
            pending.append(task)
        if pending:
            if self.workers > 1:
                self._run_pooled(pending, results, walls, report)
            else:
                self._run_serial(pending, results, walls, report)
        self.last_wall_seconds = walls
        if report.failed:
            self._raise_incomplete(report, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------

    def _raise_incomplete(self, report: RunReport, results) -> None:
        self.metrics.counter("perf.cells_failed").inc(len(report.failed))
        raise IncompleteGridError(
            f"{len(report.failed)} of {report.cells} grid cells "
            f"failed: "
            + "; ".join(f.describe() for f in report.failed[:4])
            + ("; ..." if len(report.failed) > 4 else ""),
            report=report, results=results,
        )

    def _record_failure(self, task: _Attempt, exc: BaseException,
                        fate: str, queue, report: RunReport,
                        results) -> None:
        """Charge a failed attempt; requeue with backoff or fail."""
        task.attempts += 1
        sup = self.supervisor
        if task.attempts <= sup.retries:
            report.retries += 1
            self.metrics.counter("perf.retries").inc()
            if task.work_id is not None:
                self.recorder.event(
                    "retry",
                    f"attempt {task.attempts} {fate}: "
                    f"{type(exc).__name__}: {exc}",
                    key=("cell", task.key))
            task.not_before = time.monotonic() + sup.backoff_delay(
                task.token(), task.attempts)
            queue.append(task)
            return
        if task.work_id is not None:
            self.recorder.close(
                task.work_id, "failed",
                detail=f"{fate} after {task.attempts} attempts: "
                       f"{type(exc).__name__}: {exc}")
        report.failed.append(CellFailure(
            index=task.index,
            workload=task.spec.workload.name,
            variant=task.spec.variant,
            seed=task.spec.seed,
            attempts=task.attempts,
            fate=fate,
            error=type(exc).__name__,
            message=str(exc),
            key=task.key,
        ))
        if sup.failure_policy == FAIL_FAST:
            self._kill_pool()
            self._raise_incomplete(report, results)

    def _run_serial(self, queue: List[_Attempt], results, walls,
                    report: RunReport) -> None:
        """Inline execution with retry/policy supervision.

        No pool means no kill switch, so ``timeout`` is not enforced
        here (documented on :class:`SupervisorConfig`).
        """
        fn = self._simulate_fn if self._simulate_fn is not None \
            else _simulate
        while queue:
            task = queue.pop(0)
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                cell, wall = fn(task.spec)
            except Exception as exc:
                self._record_failure(task, exc, FATE_RAISED, queue,
                                     report, results)
            else:
                self._finish(task.index, task.spec, task.key, cell,
                             wall, results, walls, report,
                             work_id=task.work_id)

    def _run_pooled(self, queue: List[_Attempt], results, walls,
                    report: RunReport) -> None:
        """The supervision loop: submit, wait, reap, retry, rebuild.

        ``queue`` holds cells awaiting (re)submission; ``running``
        maps in-flight futures to their bookkeeping.  Worker
        exceptions are caught per future; a broken pool is rebuilt
        (up to the budget) and the surviving cells resubmitted; an
        overdue cell gets its workers killed and is retried.  Cells
        co-resident with a killed worker are requeued *without* an
        attempt charge — only the culprit pays.
        """
        sup = self.supervisor
        running: Dict[object, _Attempt] = {}
        queue = list(queue)
        while queue or running:
            if report.degraded:
                self._run_serial(queue + list(running.values()),
                                 results, walls, report)
                return
            now = time.monotonic()
            ready = [t for t in queue if t.not_before <= now]
            if ready:
                fn = self._simulate_fn if self._simulate_fn is not None \
                    else _simulate
                try:
                    pool = self._ensure_pool()
                    for task in ready:
                        future = pool.submit(fn, task.spec)
                        task.deadline = (now + sup.timeout
                                         if sup.timeout else None)
                        running[future] = task
                        queue.remove(task)
                except BrokenProcessPool:
                    self._survive_pool_break(queue, running, report,
                                             results)
                    continue
            if not running:
                # Everything is backing off; sleep to the next retry.
                wake = min(t.not_before for t in queue)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue
            done = self._wait_round(queue, running)
            broke = False
            for future in done:
                task = running.pop(future)
                try:
                    cell, wall = future.result()
                except BrokenProcessPool:
                    # The pool died under this future; every other
                    # in-flight future is dead too — handle wholesale.
                    queue.append(task)
                    broke = True
                    break
                except Exception as exc:
                    self._record_failure(task, exc, FATE_RAISED, queue,
                                         report, results)
                else:
                    self._finish(task.index, task.spec, task.key, cell,
                                 wall, results, walls, report,
                                 work_id=task.work_id)
            if broke:
                self._survive_pool_break(queue, running, report, results)
                continue
            if sup.timeout:
                self._reap_overdue(queue, running, report, results)

    def _wait_round(self, queue, running):
        """One ``wait()`` bounded by timeouts and backoff wake-ups."""
        sup = self.supervisor
        timeout = None
        now = time.monotonic()
        if sup.timeout:
            next_deadline = min(t.deadline for t in running.values())
            timeout = max(0.0, next_deadline - now)
        if queue:
            next_ready = min(t.not_before for t in queue)
            wake = max(0.0, next_ready - now)
            timeout = wake if timeout is None else min(timeout, wake)
        done, _ = wait(set(running), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        return done

    def _reap_overdue(self, queue, running, report, results) -> None:
        """Kill-and-retry any in-flight cell past its deadline.

        ``ProcessPoolExecutor`` cannot cancel a running call, so the
        kill is wholesale: SIGKILL the workers, requeue the innocent
        in-flight cells free of charge, and charge a timeout attempt
        to the overdue ones.
        """
        now = time.monotonic()
        overdue = [(future, task) for future, task in running.items()
                   if task.deadline is not None and task.deadline <= now]
        if not overdue:
            return
        report.timeouts += len(overdue)
        self.metrics.counter("perf.timeouts").inc(len(overdue))
        if self.recorder is not None:
            for _future, task in overdue:
                self.recorder.event(
                    "timeout",
                    f"cell exceeded its {self.supervisor.timeout:g}s "
                    f"budget; workers killed",
                    key=("cell", task.key))
        for future, task in overdue:
            del running[future]
        for future, task in list(running.items()):
            task.not_before = 0.0
            queue.append(task)
        running.clear()
        self._kill_pool()
        for _future, task in overdue:
            exc = TimeoutError(
                f"cell exceeded its {self.supervisor.timeout:g}s "
                f"wall-clock budget"
            )
            self._record_failure(task, exc, FATE_TIMEOUT, queue,
                                 report, results)

    def _survive_pool_break(self, queue, running, report,
                            results) -> None:
        """Absorb a ``BrokenProcessPool``: rebuild and resubmit.

        Which cell killed the pool is unknowable (the executor fails
        every in-flight future identically), so breakage is charged
        to a pool-level rebuild budget rather than to any cell's
        attempts.  Past the budget the failure policy decides:
        ``degrade_to_serial`` runs the remainder inline, the others
        fail the remaining cells as ``pool_broken``.
        """
        report.worker_deaths += 1
        self.metrics.counter("perf.worker_deaths").inc()
        if self.recorder is not None:
            self.recorder.event(
                "worker_death",
                f"worker pool broke (death {report.worker_deaths}); "
                f"{len(running)} in-flight cells requeued")
        for task in running.values():
            task.not_before = 0.0
            queue.append(task)
        running.clear()
        self._kill_pool()
        if report.pool_rebuilds < self.supervisor.pool_rebuilds:
            report.pool_rebuilds += 1
            return
        policy = self.supervisor.failure_policy
        if policy == DEGRADE_TO_SERIAL:
            report.degraded = True
            return
        exc = BrokenProcessPool(
            f"worker pool died {report.worker_deaths} times "
            f"(rebuild budget {self.supervisor.pool_rebuilds})"
        )
        for task in list(queue):
            task.attempts = max(task.attempts, self.supervisor.retries)
            self._record_failure(task, exc, FATE_POOL_BROKEN, [],
                                 report, results)
        queue.clear()

    def _finish(self, index, spec, key, cell, wall, results, walls,
                report: Optional[RunReport] = None,
                work_id=None) -> None:
        self.metrics.counter("perf.simulated").inc()
        results[index] = cell
        walls[index] = wall
        if report is not None:
            report.completed += 1
        if self.cache is not None and key is not None:
            self.cache.put(key, cell, sidecar=spec.payload())
        if work_id is not None:
            self.recorder.close(work_id, "ok", detail="simulated")

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down hard (SIGKILL workers); idempotent.

        Used when a hung cell must die or the pool is already broken:
        a graceful ``shutdown()`` would wait forever on a worker that
        is spinning or unresponsive.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                if proc.is_alive():
                    os.kill(proc.pid, _signal.SIGKILL)
            except (OSError, ValueError):
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def default_workers() -> int:
    """Worker count for ``--workers 0``: one per available CPU."""
    return os.cpu_count() or 1
