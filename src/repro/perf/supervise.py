"""Supervision layer for the experiment engine.

The grids that matter are big: thousands of cells, hours of wall
clock.  At that scale host-level failures are routine — a worker
process OOM-killed mid-cell, a pathological configuration that hangs
a simulation, a cache entry truncated by a full disk, a SIGTERM from
a batch scheduler at cell 900/1000.  This module gives
:class:`~repro.perf.runner.ParallelRunner` and ``repro chaos`` the
machinery to survive all of those without giving up determinism:

* :class:`SupervisorConfig` — per-cell wall-clock timeouts, bounded
  retries with exponential backoff and *deterministic* jitter, a
  failure policy (``fail_fast`` / ``continue`` /
  ``degrade_to_serial``), and a pool-rebuild budget;
* :class:`CellFailure` / :class:`RunReport` — structured records of
  what failed, how many times it was attempted, and what happened to
  the worker, surfaced by the CLI with a nonzero exit;
* :class:`CampaignJournal` — an append-only, crash-safe JSONL journal
  of completed campaign cells, the substrate of
  ``repro chaos --resume``;
* :func:`flush_on_signals` — a SIGINT/SIGTERM handler that flushes
  checkpoint state before the process dies.

Determinism: none of this machinery touches simulation inputs.  The
seed rides in the :class:`~repro.perf.runner.CellSpec`, so a retried,
resumed, or pool-rebuilt cell produces a result byte-identical to a
clean serial run (asserted by ``tests/perf/test_supervise.py``).
Backoff jitter is derived from a hash of the cell key and attempt
number — never from a wall clock or a global RNG — so even the
supervisor's sleep schedule replays identically.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.common.errors import ConfigError

#: The three ways a grid may respond to a cell that exhausts its
#: retry budget (or to a worker pool that keeps dying):
#:
#: ``fail_fast``
#:     abort the grid on the first exhausted cell (default — the
#:     closest analogue of the unsupervised engine);
#: ``continue``
#:     finish every other cell, then raise
#:     :class:`~repro.common.errors.IncompleteGridError` listing
#:     exactly the failed cells;
#: ``degrade_to_serial``
#:     like ``continue``, but when the worker pool exceeds its
#:     rebuild budget the remaining cells run inline in the parent
#:     process instead of being abandoned.
FAIL_FAST = "fail_fast"
CONTINUE = "continue"
DEGRADE_TO_SERIAL = "degrade_to_serial"
FAILURE_POLICIES = (FAIL_FAST, CONTINUE, DEGRADE_TO_SERIAL)


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the grid supervisor.

    The defaults are *zero-cost*: no timeout, no retries,
    ``fail_fast`` — a clean run takes exactly the unsupervised path
    and produces byte-identical output.  Timeouts require a worker
    pool (``workers > 1``); inline execution cannot kill a hung cell
    and ignores ``timeout``.
    """

    #: Per-cell wall-clock budget in seconds (None = unlimited).  An
    #: overdue cell's worker is killed (SIGKILL) and the cell retried.
    timeout: Optional[float] = None
    #: Extra attempts per cell after the first (0 = no retries).
    retries: int = 0
    #: What to do when a cell exhausts its attempts.
    failure_policy: str = FAIL_FAST
    #: First-retry backoff in seconds; doubles per attempt.
    backoff_base: float = 0.05
    #: Ceiling on the exponential backoff.
    backoff_max: float = 2.0
    #: Fractional jitter added to each backoff (deterministic, hashed
    #: from the cell key and attempt number).
    jitter: float = 0.25
    #: How many times a broken worker pool is rebuilt per run before
    #: the failure policy takes over.
    pool_rebuilds: int = 3

    def __post_init__(self):
        if self.failure_policy not in FAILURE_POLICIES:
            raise ConfigError(
                f"unknown failure policy {self.failure_policy!r}; "
                f"expected one of {FAILURE_POLICIES}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.pool_rebuilds < 0:
            raise ConfigError("pool_rebuilds must be >= 0")

    @property
    def is_default(self) -> bool:
        """True when every knob sits at its zero-cost default."""
        return self == SupervisorConfig()

    def backoff_delay(self, token: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of cell ``token``.

        Exponential with a deterministic jitter fraction hashed from
        ``(token, attempt)``: two runs of the same grid sleep the
        same schedule, and concurrent retries of different cells
        de-synchronize.
        """
        base = min(self.backoff_max,
                   self.backoff_base * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(
            f"{token}:{attempt}".encode("utf-8")).hexdigest()
        frac = int(digest[:8], 16) / 0xFFFFFFFF
        return base * (1.0 + self.jitter * frac)


#: Worker fates recorded in :class:`CellFailure`:
#: ``raised`` — the cell raised inside a (surviving) worker;
#: ``timeout`` — the cell exceeded its wall-clock budget and its
#: worker was killed; ``pool_broken`` — the pool died (worker OOM /
#: SIGKILL) more times than the rebuild budget allows, taking the
#: cell's slot with it.
FATE_RAISED = "raised"
FATE_TIMEOUT = "timeout"
FATE_POOL_BROKEN = "pool_broken"


@dataclass
class CellFailure:
    """One grid cell that exhausted its supervision budget."""

    index: int
    workload: str
    variant: str
    seed: int
    attempts: int
    fate: str
    error: str
    message: str
    key: Optional[str] = None

    def describe(self) -> str:
        return (f"{self.workload}/{self.variant} seed {self.seed}: "
                f"{self.error}: {self.message} "
                f"({self.fate} after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''})")

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "workload": self.workload,
            "variant": self.variant,
            "seed": self.seed,
            "attempts": self.attempts,
            "fate": self.fate,
            "error": self.error,
            "message": self.message,
            "key": self.key,
        }


@dataclass
class RunReport:
    """Supervision record of one :meth:`ParallelRunner.run_cells` call."""

    cells: int = 0
    completed: int = 0
    failed: List[CellFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return not self.failed

    def to_dict(self) -> Dict[str, object]:
        return {
            "cells": self.cells,
            "completed": self.completed,
            "failed": [f.to_dict() for f in self.failed],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded": self.degraded,
        }

    def format(self) -> str:
        """Human-readable digest for the CLI (stderr on failure)."""
        head = (f"grid: {self.completed}/{self.cells} cells completed, "
                f"{len(self.failed)} failed "
                f"({self.retries} retries, {self.timeouts} timeouts, "
                f"{self.worker_deaths} worker deaths, "
                f"{self.pool_rebuilds} pool rebuilds"
                + (", degraded to serial" if self.degraded else "") + ")")
        lines = [head]
        lines.extend(f"  FAILED {f.describe()}" for f in self.failed)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Campaign journal
# ----------------------------------------------------------------------

class CampaignJournal:
    """Append-only JSONL journal of completed campaign cells.

    One line per finished cell: ``{"key": <cell key>, ...outcome}``.
    Every record is flushed and fsynced as it is written, so a run
    killed at cell N leaves N intact lines; a torn final line (the
    kill landed mid-write) is detected on load and ignored.  That
    makes ``repro chaos --resume`` safe after *any* interruption —
    SIGKILL included.

    ``resume=False`` (a fresh campaign) refuses to open a journal
    that already has entries: silently re-using a stale journal would
    skip cells the user asked to run.  Pass ``resume=True`` to load
    and extend it.
    """

    def __init__(self, path: os.PathLike, resume: bool = False,
                 recorder=None):
        self.path = Path(path)
        self._entries: Dict[str, Dict[str, object]] = {}
        self.torn_lines = 0
        #: Optional :class:`~repro.landscape.store.RunRecorder`.  When
        #: set, every journaled cell's terminal outcome is mirrored
        #: into the landscape *from this one write path*, so
        #: ``--resume`` (which trusts the journal) and the landscape
        #: can never disagree about which cells finished.
        self.recorder = recorder
        if self.path.exists():
            self._load()
            if self._entries and not resume:
                raise ConfigError(
                    f"journal {self.path} already has "
                    f"{len(self._entries)} completed cells; pass "
                    f"--resume to continue it or remove the file to "
                    f"start over"
                )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        # Heal a torn tail: appending straight after a half-written
        # line would merge the next record into the fragment and lose
        # both.  A lone newline terminates the fragment; the loader
        # already skips blank and unparsable lines.
        if self._fh.tell() > 0:
            with open(self.path, "rb") as raw:
                raw.seek(-1, os.SEEK_END)
                if raw.read(1) != b"\n":
                    self._fh.write("\n")
                    self.flush()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record.pop("key")
                except (json.JSONDecodeError, KeyError):
                    # A torn tail from a mid-write kill: the cell it
                    # would have recorded simply re-runs.
                    self.torn_lines += 1
                    continue
                self._entries[key] = record

    def record(self, key: str, payload: Dict[str, object]) -> None:
        """Journal one completed cell (durable before returning)."""
        self._entries[key] = dict(payload)
        self._fh.write(json.dumps({"key": key, **payload},
                                  sort_keys=True) + "\n")
        self.flush()
        if self.recorder is not None:
            # Journal line first, ledger row second: a kill between
            # the two leaves an open work row for heal-on-reopen, never
            # a ledger entry the journal cannot back.  Outcome strings
            # match repro.landscape.schema (imported lazily at the call
            # sites; this module stays landscape-free).
            outcome = "ok" if payload.get("ok", True) else "failed"
            self.recorder.close_key("chaos_cell", key, outcome,
                                    detail="journaled")

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def flush(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Signal handling
# ----------------------------------------------------------------------

@contextmanager
def flush_on_signals(*flushables) -> Iterator[None]:
    """Flush checkpoint state on SIGINT/SIGTERM, then exit.

    Installs handlers for the duration of the block that call
    ``flush()`` on every argument (``None``s are skipped), then raise
    ``KeyboardInterrupt`` (SIGINT) or ``SystemExit(128 + signum)``
    (SIGTERM) so the interruption still unwinds normally.  Previous
    handlers are restored on exit.  Journal and cache writes are
    individually durable already; this closes the last-line window
    and guarantees an interrupted campaign resumes from its final
    completed cell.
    """

    def handler(signum, _frame):
        for f in flushables:
            if f is None:
                continue
            try:
                f.flush()
            except (OSError, ValueError):
                pass
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # non-main thread: no handlers
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


def atomic_write_text(path: os.PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + replace).

    Shared by checkpoint writers so a kill mid-write can never leave
    a half-written artifact where a complete one is expected.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
