"""Content-hashed on-disk cache of finished grid cells.

A cell's result is fully determined by its content: the workload
spec, the HTM variant, the system and HTM configurations, the seed,
the scale, and the thread count.  :func:`cell_key` hashes a canonical
JSON rendering of exactly that content (plus a schema version), so

* re-running a figure or table build hits the cache and is near-free;
* an interrupted sweep resumes where it stopped (finished cells are
  on disk, unfinished ones re-run);
* *any* change to a knob that affects results — a latency constant, a
  signature geometry, the scale — changes the key and transparently
  invalidates just the affected cells.

Entries live under ``<root>/<k[:2]>/<k>.pkl`` (pickled
:class:`~repro.analysis.experiments.Cell`) with a ``.json`` sidecar
holding the human-readable key material for debugging.  Writes are
atomic (temp file + ``os.replace``), so a killed run never leaves a
truncated entry.  Bump :data:`CACHE_SCHEMA` when the simulator's
behaviour changes in a way the key content cannot see.

Reads are *crash-safe* too: an entry that cannot be unpickled — a
truncation that slipped past the atomic write (full disk, torn copy),
or a stale class layout raising ``AttributeError``/``ImportError``
from an entry written under an old ``CACHE_SCHEMA`` discipline — is
treated as a miss, **quarantined** to ``<key>.pkl.corrupt`` so it can
never fail again on the next run, and counted through the
``perf.cache_corrupt`` metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

#: Version folded into every key.  Bump on behavioural changes that
#: the key payload itself does not capture (e.g. executor semantics).
#: 2: CellSpec payload grew a ``fast_path`` field (access filters).
#: 3: CellSpec payload grew ``faults`` / ``monitor`` fields: chaos
#:    runs must never share entries with clean runs (and pre-faults
#:    entries never answer post-faults requests).
#: 4: ``workload`` may now be a trace spec (path/digest/convert) and
#:    the executor gained SIGNAL/WAIT dependency ops — entries from
#:    builds without the trace front-end must not answer for it.
#: 5: CellSpec payload grew a ``kernel`` field (pluggable
#:    SimulationKernel backends).  Backends are byte-identical by
#:    contract, but they must never share entries: a cross-kernel
#:    verification run answered from the other backend's cache would
#:    silently prove nothing.
CACHE_SCHEMA = 5

#: Default cache directory (overridable via the environment).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR))


def _canonical(obj: Any) -> Any:
    """Recursively reduce dataclasses/containers to JSON-able values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache key")


def cell_key(spec) -> str:
    """Content hash (hex) of one grid cell.

    ``spec`` is anything with a ``payload()`` returning the dict of
    result-determining content (:class:`repro.perf.runner.CellSpec`),
    or such a dict directly.
    """
    payload = spec.payload() if hasattr(spec, "payload") else spec
    canonical = {"cache_schema": CACHE_SCHEMA, **_canonical(payload)}
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed store of pickled grid cells, keyed by hash.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) makes
    quarantines observable as ``perf.cache_corrupt``; a
    :class:`~repro.perf.runner.ParallelRunner` attaches its own
    registry automatically.  :attr:`quarantined` counts them locally
    either way.
    """

    def __init__(self, root: Optional[os.PathLike] = None, metrics=None,
                 recorder=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.metrics = metrics
        #: Optional :class:`~repro.landscape.store.RunRecorder`: when
        #: set, every quarantine is also recorded as a non-terminal
        #: ``cache_quarantine`` event in the result landscape.  A
        #: :class:`~repro.perf.runner.ParallelRunner` attaches its own
        #: recorder automatically, like ``metrics``.
        self.recorder = recorder
        #: Corrupt entries quarantined by this instance.
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached cell for ``key``, or None.

        Any entry that fails to load — truncated pickle, or a stale
        class layout raising ``AttributeError``/``ImportError`` under
        ``CACHE_SCHEMA`` discipline — reads as a miss and is moved
        aside to ``<key>.pkl.corrupt`` so the re-simulated result can
        take its slot (and the bad bytes stay available for autopsy).
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        self.quarantined += 1
        if self.metrics is not None:
            self.metrics.counter("perf.cache_corrupt").inc()
        if self.recorder is not None:
            self.recorder.event("cache_quarantine",
                                f"unreadable entry moved to "
                                f"{path.name}.corrupt")
        try:
            os.replace(path, Path(str(path) + ".corrupt"))
        except OSError:
            pass  # raced with a concurrent quarantine or a cleanup

    def put(self, key: str, cell, sidecar: Optional[Dict] = None) -> None:
        """Store ``cell`` under ``key`` atomically.

        ``sidecar`` (normally the key payload) is written next to the
        entry as pretty JSON so a human can tell what a hash holds.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(cell, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if sidecar is not None:
            side = path.with_suffix(".json")
            side.write_text(
                json.dumps(_canonical(sidecar), sort_keys=True, indent=2)
                + "\n",
                encoding="utf-8",
            )

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink()
            side = path.with_suffix(".json")
            if side.exists():
                side.unlink()
            removed += 1
        return removed
