"""OS-facing support: paging, context switching, System-V sharing."""

from repro.syssupport.contextswitch import CoreScheduler, SwitchRecord
from repro.syssupport.paging import (
    BLOCKS_PER_PAGE,
    PageImage,
    PageManager,
    page_blocks,
    page_of,
)
from repro.syssupport.sysv import SharedSegment, TidAuthority

__all__ = [
    "BLOCKS_PER_PAGE",
    "CoreScheduler",
    "PageImage",
    "PageManager",
    "SharedSegment",
    "SwitchRecord",
    "TidAuthority",
    "page_blocks",
    "page_of",
]
