"""System-V-style shared memory across processes (Section 5.3).

The paper argues TokenTM may be the first HTM to support transactions
over memory shared between *processes*: metastate attaches to
physical pages, so every mapping sees the same token state.  Two
requirements fall out, both modelled here:

* TIDs must be unique across all processes sharing memory
  (:class:`TidAuthority` hands out system-wide TIDs and enforces the
  14-bit Attr-field limit);
* contention managers of the sharing processes must coordinate —
  :class:`SharedSegment` keeps the process registry a cross-process
  conflict handler would consult.

Copy-on-write sharing needs either no active transactions on the page
or a software metastate fission; :meth:`SharedSegment.fork_cow_page`
implements the check-and-split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.errors import SimulationError, TokenError
from repro.core.fission import fission
from repro.htm.tokentm import TokenTM
from repro.mem.metabit_store import ATTR_MAX
from repro.syssupport.paging import BLOCKS_PER_PAGE, page_blocks


class TidAuthority:
    """System-wide TID allocator.

    TIDs are the only new resource TokenTM introduces; the OS manages
    them without VMM involvement, but processes sharing memory must
    draw from one namespace so metastate owner fields stay
    unambiguous.
    """

    def __init__(self) -> None:
        self._next = 0
        self._by_process: Dict[int, Set[int]] = {}

    def allocate(self, process: int) -> int:
        """Grab a fresh globally-unique TID for ``process``."""
        if self._next > ATTR_MAX:
            raise TokenError(
                f"TID space exhausted ({ATTR_MAX + 1} identifiers)"
            )
        tid = self._next
        self._next += 1
        self._by_process.setdefault(process, set()).add(tid)
        return tid

    def release(self, process: int, tid: int) -> None:
        """Return a TID when its thread exits."""
        owned = self._by_process.get(process, set())
        if tid not in owned:
            raise SimulationError(
                f"process {process} does not own TID {tid}"
            )
        owned.discard(tid)

    def owner_process(self, tid: int) -> Optional[int]:
        """Which process a TID belongs to (conflict coordination)."""
        for process, tids in self._by_process.items():
            if tid in tids:
                return process
        return None


@dataclass
class SharedSegment:
    """A System-V shared-memory segment mapped by several processes."""

    base_page: int
    num_pages: int
    authority: TidAuthority
    attached: Set[int] = field(default_factory=set)

    def attach(self, process: int) -> None:
        self.attached.add(process)

    def detach(self, process: int) -> None:
        self.attached.discard(process)

    def blocks(self) -> range:
        start = self.base_page * BLOCKS_PER_PAGE
        return range(start, start + self.num_pages * BLOCKS_PER_PAGE)

    def contains_block(self, block: int) -> bool:
        return block in self.blocks()

    def conflict_processes(self, conflicting_tids) -> List[int]:
        """Processes whose contention managers must coordinate.

        Given the TIDs involved in a conflict on this segment, return
        the owning processes (deduplicated, sorted) — the set that
        must agree on a resolution.
        """
        procs = set()
        for tid in conflicting_tids:
            proc = self.authority.owner_process(tid)
            if proc is not None:
                procs.add(proc)
        return sorted(procs)

    def fork_cow_page(self, htm: TokenTM, page: int,
                      new_page: int) -> None:
        """Copy-on-write split of a shared page.

        Allowed only when no cached transactional copies exist (the
        simple case the paper requires); the home metastate of each
        block is then fissioned in software: the original page keeps
        the reader counts, the new page starts clear — except writer
        state, which must not exist across a COW split at all.
        """
        if not (self.base_page <= page < self.base_page + self.num_pages):
            raise SimulationError(f"page {page} outside segment")
        store = htm._store
        tpb = store.tokens_per_block
        for block in page_blocks(page):
            if htm.mem.holders(block):
                raise SimulationError(
                    f"COW split of page {page} with live cached "
                    f"copies of block {block:#x}"
                )
            home = store.load(block)
            if home.total == tpb:
                raise SimulationError(
                    f"COW split of page {page} with an active writer "
                    f"on block {block:#x}"
                )
            retained, new_copy = fission(home, tpb)
            store.store(block, retained)
            new_block = (new_page * BLOCKS_PER_PAGE
                         + (block - page * BLOCKS_PER_PAGE))
            store.store(new_block, new_copy)
