"""Paging support (Section 5.3).

TokenTM's metastate lives with physical blocks, so paging needs three
small VM-system hooks, borrowed from systems like the IBM AS/400:

* clear metabits when a fresh physical page is handed out,
* save metabits (alongside the data) on page-out,
* restore them on page-in.

:class:`PageManager` models this against a TokenTM machine: paging a
page out force-evicts every cached copy of its blocks (fusing their
metastate shards home, exactly as hardware writeback would), then
detaches the home metabits into a swap image.  Transactions whose
tokens were paged out keep running — their log still holds the
credits — but they lose fast-release eligibility, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import SimulationError
from repro.htm.tokentm import TokenTM
from repro.obs.events import EventKind

#: Blocks per page: 4 KB pages of 64-byte blocks.
BLOCKS_PER_PAGE = 64


def page_of(block: int) -> int:
    """Page number containing a block."""
    return block // BLOCKS_PER_PAGE


def page_blocks(page: int) -> range:
    """All block numbers of a page."""
    start = page * BLOCKS_PER_PAGE
    return range(start, start + BLOCKS_PER_PAGE)


@dataclass
class PageImage:
    """Swap-resident image of one page's metabits."""

    page: int
    metabits: Dict[int, int] = field(default_factory=dict)


class PageManager:
    """VM-system model: page-out/page-in with metabit save/restore."""

    def __init__(self, htm: TokenTM):
        self._htm = htm
        self._swapped: Dict[int, PageImage] = {}

    @property
    def swapped_pages(self) -> List[int]:
        return sorted(self._swapped)

    def page_out(self, page: int) -> PageImage:
        """Evict a page: flush cached copies, save home metabits."""
        if page in self._swapped:
            raise SimulationError(f"page {page} already swapped out")
        mem = self._htm.mem
        for block in page_blocks(page):
            # Non-silent eviction of every cached copy fuses each
            # copy's metastate shard back to the home metabits.
            for core in sorted(mem.holders(block)):
                mem.evict(core, block)
        image = PageImage(page)
        image.metabits = self._htm._store.page_out(page_blocks(page))
        self._swapped[page] = image
        bus = self._htm.bus
        if bus.enabled:
            bus.emit(EventKind.PAGE_OUT, block=page * BLOCKS_PER_PAGE,
                     page=page, metabit_blocks=len(image.metabits))
        return image

    def page_in(self, page: int) -> None:
        """Restore a page's metabits from its swap image."""
        image = self._swapped.pop(page, None)
        if image is None:
            raise SimulationError(f"page {page} is not swapped out")
        self._htm._store.page_in(image.metabits)
        bus = self._htm.bus
        if bus.enabled:
            bus.emit(EventKind.PAGE_IN, block=page * BLOCKS_PER_PAGE,
                     page=page, metabit_blocks=len(image.metabits))

    def initialize_page(self, page: int) -> None:
        """Fresh physical page: metabits must start cleared.

        The VM system calls this when recycling a frame for a new
        mapping; stale metabits from the previous owner would corrupt
        token accounting.
        """
        if page in self._swapped:
            raise SimulationError(
                f"page {page} still has a swap image; page it in first"
            )
        self._htm._store.page_out(page_blocks(page))  # discard bits
