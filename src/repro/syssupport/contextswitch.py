"""Context-switch support (Sections 4.4 and 5.3).

TokenTM provides an instruction that frees the R and W metabits for
the next thread in constant time: a flash-OR of R into R' and W into
W' across the L1.  The descheduled transaction keeps its tokens (its
log holds the credits; the primed bits hold the debits) but can never
use fast release again.

:class:`CoreScheduler` models an OS scheduler over the simulated
cores: it performs the deschedule instruction, remembers which thread
ran where, and reschedules threads — possibly on *different* cores,
which works because the metastate identifies threads by TID, not by
core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.htm.tokentm import TokenTM
from repro.obs.events import EventKind


@dataclass
class SwitchRecord:
    """One deschedule event, for diagnostics."""

    core: int
    tid: int
    cycles: int


class CoreScheduler:
    """OS-scheduler model issuing TokenTM's switch instruction."""

    def __init__(self, htm: TokenTM):
        self._htm = htm
        self._running: Dict[int, Optional[int]] = {}
        self.history: List[SwitchRecord] = []

    def start(self, core: int, tid: int) -> None:
        """Place a thread on an idle core (no prior occupant)."""
        if self._running.get(core) is not None:
            raise SimulationError(f"core {core} already running a thread")
        self._running[core] = tid
        self._htm.schedule(core, tid)

    def deschedule(self, core: int) -> int:
        """Remove the running thread; returns the switch cycle cost.

        Issues the flash-OR instruction so the core's R/W bits are
        freed for whatever runs next.
        """
        tid = self._running.get(core)
        if tid is None:
            raise SimulationError(f"core {core} has no running thread")
        cycles = self._htm.context_switch(core)
        self._running[core] = None
        self.history.append(SwitchRecord(core, tid, cycles))
        bus = self._htm.bus
        if bus.enabled:
            bus.emit(EventKind.CTX_SWITCH, tid=tid, core=core,
                     cycles=cycles, source="scheduler")
        return cycles

    def resume(self, core: int, tid: int) -> None:
        """Run a previously descheduled thread, on any idle core."""
        self.start(core, tid)

    def running(self, core: int) -> Optional[int]:
        """TID currently on ``core``, if any."""
        return self._running.get(core)

    def migrate(self, from_core: int, to_core: int) -> int:
        """Deschedule from one core and resume on another.

        Returns the switch cost.  Works mid-transaction: TokenTM's
        conflict detection is per-TID, so the transaction continues
        on the new core (it just lost fast-release eligibility).
        """
        tid = self._running.get(from_core)
        if tid is None:
            raise SimulationError(f"core {from_core} has no thread")
        cycles = self.deschedule(from_core)
        self.resume(to_core, tid)
        return cycles
