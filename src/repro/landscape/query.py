"""Cross-run queries over the landscape: trajectories and gating.

Where :func:`~repro.perf.bench.check_regression` compares one fresh
payload against one baseline file, this module reads *every* bench
run the landscape recorded and reports trajectories — how each
regression-checked section's speedup ratio moved across runs — and
gates on the latest step: if the newest trusted run's ratio fell more
than the tolerance below the run before it, ``repro query`` exits
nonzero, same contract as ``repro bench --baseline``.

Only ``ok`` bench runs participate.  A run that failed, was
interrupted, or was healed after a crash never becomes the baseline
another run is judged against — "latest trusted run" means exactly
that, and it is the audit's invariants that make "trusted"
meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.landscape.schema import OUTCOME_OK, RUN_BENCH
from repro.landscape.store import LandscapeStore

#: Sections whose speedup ratio the trajectory tracks — the same set
#: the one-shot baseline check gates on.
from repro.perf.bench import REGRESSION_SECTIONS


@dataclass(frozen=True)
class BenchPoint:
    """One trusted bench run's regression-relevant numbers."""

    run_id: int
    started_unix: float
    git_rev: Optional[str]
    bench_schema: Optional[str]
    speedups: Dict[str, float] = field(default_factory=dict)
    grid_ops_per_sec: Optional[float] = None


def trusted_bench_runs(store: LandscapeStore) -> List[BenchPoint]:
    """Every ``ok`` bench run with a payload, oldest first."""
    points = []
    for run in store.runs(RUN_BENCH):
        if run["status"] != OUTCOME_OK or not run["payload"]:
            continue
        try:
            payload = json.loads(run["payload"])
        except (TypeError, ValueError):
            continue  # unparseable payload: not trustworthy, skip
        speedups = {}
        for section in REGRESSION_SECTIONS:
            speedup = (payload.get(section) or {}).get("speedup")
            if speedup:
                speedups[section] = speedup
        totals = payload.get("totals") or {}
        points.append(BenchPoint(
            run_id=run["id"],
            started_unix=run["started_unix"],
            git_rev=run["git_rev"],
            bench_schema=run["bench_schema"],
            speedups=speedups,
            grid_ops_per_sec=totals.get("sim_ops_per_sec"),
        ))
    return points


def latest_baseline(store: LandscapeStore) -> Optional[Dict]:
    """The newest trusted bench payload — what
    ``repro bench --baseline`` resolves to when pointed at the
    landscape instead of a JSON file.  ``None`` if no trusted run
    exists yet (first run on a fresh store)."""
    for run in reversed(store.runs(RUN_BENCH)):
        if run["status"] != OUTCOME_OK or not run["payload"]:
            continue
        try:
            return json.loads(run["payload"])
        except (TypeError, ValueError):
            continue
    return None


def trajectory_regressions(points: List[BenchPoint],
                           tolerance: float = 0.3) -> List[str]:
    """Gate the latest trusted run against the one before it.

    Same ratio-vs-ratio comparison as
    :func:`~repro.perf.bench.check_regression` (wall-clock noise
    cancels inside each ratio), applied to the landscape's own
    history.  Returns human-readable failures; empty means pass (and
    fewer than two trusted runs is trivially a pass — there is no
    trajectory yet).
    """
    if len(points) < 2:
        return []
    prev, last = points[-2], points[-1]
    failures = []
    for section in REGRESSION_SECTIONS:
        base = prev.speedups.get(section)
        now = last.speedups.get(section)
        if not base or not now:
            continue
        drop = 1.0 - now / base
        if drop > tolerance:
            failures.append(
                f"{section} speedup fell {drop:.0%} between run "
                f"#{prev.run_id} and run #{last.run_id} "
                f"({base:.2f}x -> {now:.2f}x, tolerance {tolerance:.0%})"
            )
    return failures


def format_trajectory(points: List[BenchPoint],
                      failures: List[str]) -> str:
    """Human-readable trajectory table (the ``repro query`` output)."""
    if not points:
        return ("no trusted bench runs in the landscape yet "
                "(run `repro bench --landscape <db>` to record one)")
    lines = [f"bench trajectory: {len(points)} trusted run(s)"]
    for point in points:
        rev = (point.git_rev or "unknown")[:12]
        ratios = " ".join(
            f"{section}={point.speedups[section]:.2f}x"
            for section in REGRESSION_SECTIONS
            if section in point.speedups
        ) or "(no ratio sections)"
        ops = (f" grid={point.grid_ops_per_sec:,.0f} ops/s"
               if point.grid_ops_per_sec else "")
        lines.append(f"  run #{point.run_id} rev={rev} {ratios}{ops}")
    deltas = section_deltas(points)
    if deltas:
        lines.append("latest vs previous:")
        for section, (base, now) in sorted(deltas.items()):
            change = now / base - 1.0
            lines.append(
                f"  {section}: {base:.2f}x -> {now:.2f}x ({change:+.0%})")
    if failures:
        lines.append(f"REGRESSIONS: {len(failures)}")
        lines.extend(f"  {failure}" for failure in failures)
    elif len(points) >= 2:
        lines.append("no regression between the two latest trusted runs")
    return "\n".join(lines)


def section_deltas(
        points: List[BenchPoint]) -> Dict[str, Tuple[float, float]]:
    """``{section: (previous, latest)}`` speedups for sections present
    in both of the two newest trusted runs."""
    if len(points) < 2:
        return {}
    prev, last = points[-2], points[-1]
    return {
        section: (prev.speedups[section], last.speedups[section])
        for section in REGRESSION_SECTIONS
        if section in prev.speedups and section in last.speedups
    }
