"""Mutation self-test: prove the audit catches what it claims to.

An audit that always says "balanced" is indistinguishable from one
that works — until the day it matters.  This module is the
fault-injection campaign turned on the auditor itself: build a known
clean ledger, verify the audit passes, then seed one violation at a
time **through raw sqlite** (bypassing every store-level guard, as a
crash or a buggy writer would) and verify the audit fails loudly on
each:

* drop a terminal write        → ``orphan``
* commit the same work twice   → ``double_commit``
* tear away the debit side     → ``dangling_outcome``
* corrupt bytes mid-file       → corrupt-db quarantine engages

Run via ``repro audit --selftest``; CI runs it in the
``landscape-smoke`` job.  A failing self-test means the auditor has
gone blind — fix it before trusting any green audit.
"""

from __future__ import annotations

import shutil
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Tuple

from repro.landscape.audit import audit_store
from repro.landscape.schema import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    RUN_GRID,
    WORK_CELL,
)
from repro.landscape.store import LandscapeStore


@dataclass(frozen=True)
class SelfTestResult:
    """One mutation's verdict: did the audit catch it?"""

    name: str
    caught: bool
    detail: str


def _build_fixture(path: Path) -> None:
    """A small, known-balanced ledger: one finished grid run, three
    closed cells (two ok, one failed)."""
    with LandscapeStore(path) as store:
        recorder = store.begin_run(RUN_GRID, label="selftest-fixture")
        for index in range(3):
            recorder.open(WORK_CELL, f"cell-{index}", workload="fixture",
                          seed=index)
        recorder.close_key(WORK_CELL, "cell-0", OUTCOME_OK)
        recorder.close_key(WORK_CELL, "cell-1", OUTCOME_OK)
        recorder.close_key(WORK_CELL, "cell-2", OUTCOME_FAILED,
                           detail="seeded failure")
        recorder.finish(OUTCOME_OK)


def _raw(path: Path, sql: str) -> None:
    """Mutate the database the way a buggy or foreign writer would:
    straight SQL, no store guards."""
    conn = sqlite3.connect(str(path))
    try:
        conn.execute(sql)
        conn.commit()
    finally:
        conn.close()


def _expect_finding(path: Path, rule: str) -> Tuple[bool, str]:
    with LandscapeStore(path, readonly=True) as store:
        findings = audit_store(store)
    rules = sorted({finding.rule for finding in findings})
    if rule in rules:
        return True, f"audit reported {rules}"
    return False, (f"audit MISSED the seeded {rule!r} violation "
                   f"(reported: {rules or 'clean'})")


def _mutate_drop_terminal(path: Path) -> Tuple[bool, str]:
    _raw(path, "DELETE FROM outcomes WHERE id = "
               "(SELECT MAX(id) FROM outcomes)")
    return _expect_finding(path, "orphan")


def _mutate_double_commit(path: Path) -> Tuple[bool, str]:
    _raw(path, "INSERT INTO outcomes "
               "(work_id, outcome, healed, closed_unix, detail) "
               "SELECT work_id, 'ok', 0, closed_unix, 'duplicate' "
               "FROM outcomes LIMIT 1")
    return _expect_finding(path, "double_commit")


def _mutate_tear_debit(path: Path) -> Tuple[bool, str]:
    _raw(path, "DELETE FROM work WHERE id = (SELECT MIN(id) FROM work)")
    return _expect_finding(path, "dangling_outcome")


def _mutate_corrupt_page(path: Path) -> Tuple[bool, str]:
    """Scribble over page 1's btree body (the ``sqlite_master``
    schema page, past the 100-byte file header) so ``quick_check``
    sees a malformed page; the read-write open must quarantine the
    file and start fresh, never serve the garbage.  The file header
    is left intact on purpose — a still-recognizably-sqlite file with
    a torn page is the realistic partial-write shape, and the one
    freelist-page corruption would *not* catch."""
    blob = bytearray(path.read_bytes())
    for offset in range(100, min(4096, len(blob))):
        blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))
    with LandscapeStore(path) as store:
        quarantined = store.quarantined
        leftover_runs = len(store.runs())
    sidecar = Path(str(path) + ".corrupt")
    if quarantined == 1 and sidecar.exists() and leftover_runs == 0:
        return True, "corrupt db quarantined, fresh store started"
    return False, (f"quarantine failed: quarantined={quarantined} "
                   f"sidecar={sidecar.exists()} runs={leftover_runs}")


MUTATIONS: Tuple[Tuple[str, Callable[[Path], Tuple[bool, str]]], ...] = (
    ("drop_terminal_write", _mutate_drop_terminal),
    ("double_commit", _mutate_double_commit),
    ("tear_debit_side", _mutate_tear_debit),
    ("corrupt_page", _mutate_corrupt_page),
)


def run_selftest(scratch_dir) -> List[SelfTestResult]:
    """Run every mutation against a fresh fixture copy in
    ``scratch_dir``.  All-caught (including the clean-baseline check)
    means the auditor still has teeth."""
    scratch = Path(scratch_dir)
    scratch.mkdir(parents=True, exist_ok=True)
    fixture = scratch / "fixture.db"
    _build_fixture(fixture)

    results: List[SelfTestResult] = []
    with LandscapeStore(fixture, readonly=True) as store:
        findings = audit_store(store)
    results.append(SelfTestResult(
        "clean_baseline", not findings,
        "clean fixture audits clean" if not findings
        else f"clean fixture produced findings: {findings}"))

    for name, mutate in MUTATIONS:
        victim = scratch / f"{name}.db"
        shutil.copyfile(fixture, victim)
        caught, detail = mutate(victim)
        results.append(SelfTestResult(name, caught, detail))
    return results


def format_selftest(results: List[SelfTestResult]) -> str:
    lines = ["audit mutation self-test:"]
    for result in results:
        verdict = "caught" if result.caught else "MISSED"
        lines.append(f"  [{verdict}] {result.name}: {result.detail}")
    if all(result.caught for result in results):
        lines.append("self-test passed: the audit catches every "
                     "seeded violation")
    else:
        missed = [r.name for r in results if not r.caught]
        lines.append(f"SELF-TEST FAILED: audit blind to {missed}")
    return "\n".join(lines)
