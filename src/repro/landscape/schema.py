"""Landscape database schema: versioned DDL and forward migrations.

The landscape is a **double-entry outcome ledger** over three fronts
of results (grid cells, chaos campaign cells, bench sections), plus
the provenance needed to trust them later:

``runs``
    One row per producing invocation — a grid run, a chaos campaign,
    or a bench run.  Carries the provenance common to everything the
    invocation produced: git revision, ``CACHE_SCHEMA`` /
    ``BENCH_SCHEMA`` versions, kernel backend, seed, wall-clock
    timestamps, the end-of-run metrics snapshot, and (for bench runs)
    the full payload JSON that ``repro query`` and
    ``repro bench --baseline`` read back.
``work``
    One row per unit of work, inserted when the unit is *dispatched*
    (the debit side of the ledger).  Keyed by the unit's full
    result-determining content: the :func:`~repro.perf.cache.cell_key`
    content hash for grid cells, the
    :func:`~repro.faults.campaign.campaign_cell_key` for chaos cells,
    the section name for bench sections — plus per-unit provenance
    (workload, variant, seed, fault-plan hash, trace digest, kernel).
``outcomes``
    One row per *terminal* outcome (the credit side): ``ok`` /
    ``failed`` / ``quarantined`` / ``interrupted``.  The ledger
    invariant — **every work row has exactly one outcome row** — is
    deliberately *not* a UNIQUE constraint: like TokenTM's token
    books, the invariant is enforced by an auditor
    (:mod:`repro.landscape.audit`), so a torn write, a lost close, or
    a double commit is *detected after the fact* rather than silently
    impossible to represent.
``events``
    Non-terminal happenings along the way: retries, timeouts, worker
    deaths, cache quarantines, heals.  Events never close work; they
    explain the path a unit took to its one terminal outcome.

Schema versioning rides sqlite's ``user_version`` pragma.  Bump
:data:`LANDSCAPE_SCHEMA` and append a :data:`MIGRATIONS` entry when
the DDL changes; :class:`~repro.landscape.store.LandscapeStore`
applies pending migrations forward in one transaction at open and
refuses databases *newer* than the running build.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

#: Current schema version (sqlite ``user_version``).  A database at
#: an older version is migrated forward at open; a newer one is
#: refused (downgrade would need code this build does not have).
LANDSCAPE_SCHEMA = 1

#: Run kinds (``runs.kind``).
RUN_GRID = "grid"
RUN_CHAOS = "chaos"
RUN_BENCH = "bench"
RUN_KINDS = (RUN_GRID, RUN_CHAOS, RUN_BENCH)

#: Work kinds (``work.kind``).
WORK_CELL = "cell"
WORK_CHAOS_CELL = "chaos_cell"
WORK_BENCH_SECTION = "bench_section"
WORK_KINDS = (WORK_CELL, WORK_CHAOS_CELL, WORK_BENCH_SECTION)

#: The four terminal outcomes.  Every dispatched unit of work must
#: reach exactly one of these (the audit invariant):
#:
#: ``ok``           finished and its result is trustworthy;
#: ``failed``       finished by failing (exhausted retries, invariant
#:                  violation, raised) — the failure is the result;
#: ``quarantined``  its result was discarded as corrupt/untrusted
#:                  (e.g. a poisoned cache entry backed the unit);
#: ``interrupted``  never finished — budget interruption, signal, or
#:                  healed after a crash left the row open.
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_QUARANTINED = "quarantined"
OUTCOME_INTERRUPTED = "interrupted"
TERMINAL_OUTCOMES = (OUTCOME_OK, OUTCOME_FAILED, OUTCOME_QUARANTINED,
                     OUTCOME_INTERRUPTED)

#: Run statuses (``runs.status``): ``open`` while the producing
#: process is alive, then one terminal status.  ``open`` rows found
#: at (read-write) reopen belong to a dead process — the store heals
#: them to ``interrupted`` with ``healed=1``.
RUN_OPEN = "open"
RUN_STATUSES = (RUN_OPEN,) + TERMINAL_OUTCOMES

#: Non-terminal event kinds (``events.kind``).  Free-form by design —
#: these canonical names are what the shipped wiring emits.
EVENT_RETRY = "retry"
EVENT_TIMEOUT = "timeout"
EVENT_WORKER_DEATH = "worker_death"
EVENT_CACHE_QUARANTINE = "cache_quarantine"
EVENT_HEALED = "healed"

#: DDL for a fresh database at :data:`LANDSCAPE_SCHEMA`.
CREATE_TABLES: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        id            INTEGER PRIMARY KEY,
        kind          TEXT NOT NULL,
        label         TEXT,
        status        TEXT NOT NULL DEFAULT 'open',
        healed        INTEGER NOT NULL DEFAULT 0,
        started_unix  REAL NOT NULL,
        finished_unix REAL,
        git_rev       TEXT,
        cache_schema  INTEGER,
        bench_schema  TEXT,
        kernel        TEXT,
        seed          INTEGER,
        provenance    TEXT,
        metrics       TEXT,
        payload       TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS work (
        id           INTEGER PRIMARY KEY,
        run_id       INTEGER NOT NULL,
        kind         TEXT NOT NULL,
        key          TEXT NOT NULL,
        workload     TEXT,
        variant      TEXT,
        seed         INTEGER,
        fault_plan   TEXT,
        trace_digest TEXT,
        kernel       TEXT,
        opened_unix  REAL NOT NULL,
        provenance   TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS outcomes (
        id          INTEGER PRIMARY KEY,
        work_id     INTEGER NOT NULL,
        outcome     TEXT NOT NULL,
        healed      INTEGER NOT NULL DEFAULT 0,
        closed_unix REAL NOT NULL,
        detail      TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS events (
        id      INTEGER PRIMARY KEY,
        run_id  INTEGER NOT NULL,
        work_id INTEGER,
        kind    TEXT NOT NULL,
        detail  TEXT,
        at_unix REAL NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS work_run ON work(run_id)",
    "CREATE INDEX IF NOT EXISTS work_key ON work(kind, key)",
    "CREATE INDEX IF NOT EXISTS outcomes_work ON outcomes(work_id)",
    "CREATE INDEX IF NOT EXISTS events_run ON events(run_id)",
)

#: Forward migrations: ``{from_version: (sql, ...)}`` taking a
#: database from ``from_version`` to ``from_version + 1``.  Applied
#: in order inside one transaction by the store; the final
#: ``user_version`` write rides the same transaction, so a kill
#: mid-migration leaves the old version intact and the migration
#: simply re-runs.  Empty at schema 1; the machinery is exercised by
#: ``tests/landscape/test_store.py`` with a registered fake step.
MIGRATIONS: Dict[int, Sequence[str]] = {}
