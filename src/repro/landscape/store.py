"""Crash-safe sqlite store behind the result landscape.

Durability model (mirrors docs/landscape.md):

* **WAL mode, ``synchronous=FULL``** — every committed transaction
  survives power loss; readers never block the single writer.
* **One transaction per logical write** — a row is either fully
  there or absent; there is no multi-statement window a SIGKILL can
  tear.  (The *ledger* can still be torn — a process can die between
  opening work and closing it — which is exactly what the audit and
  heal-on-reopen exist to handle.)
* **Single-writer discipline** — at most one read-write
  :class:`LandscapeStore` is open per database.  Opening read-write
  therefore implies any previous writer is dead, which makes
  heal-on-reopen sound: every ``open`` run found at open belongs to
  a crashed process and is closed as ``interrupted`` with
  ``healed=1`` (its outcome-less work rows likewise).
* **Corrupt-db quarantine** — if sqlite reports the file is not a
  database or ``quick_check`` fails, the bytes move aside to
  ``<path>.corrupt`` (with any ``-wal``/``-shm`` companions) and a
  fresh store starts, mirroring ResultCache's ``.pkl.corrupt``
  policy: results are reproducible, evidence of corruption is not —
  keep the evidence, free the slot.
* **Schema versioning** — ``PRAGMA user_version`` holds
  :data:`~repro.landscape.schema.LANDSCAPE_SCHEMA`; older databases
  migrate forward at open (each step + the version bump in one
  transaction, so a mid-migration kill re-runs cleanly), newer ones
  are refused with :class:`~repro.common.errors.ConfigError`.

Recorder write failures **raise**: a landscape that silently drops
ledger entries would pass every audit while recording nothing, which
is worse than no landscape at all.  Callers opt in by constructing a
store; once they do, writes are load-bearing.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError, ReproError
from repro.landscape.schema import (
    CREATE_TABLES,
    LANDSCAPE_SCHEMA,
    MIGRATIONS,
    OUTCOME_INTERRUPTED,
    RUN_KINDS,
    RUN_OPEN,
    TERMINAL_OUTCOMES,
    WORK_KINDS,
)
from repro.obs.metrics import LANDSCAPE_COUNTERS


class LedgerError(ReproError):
    """In-process misuse of the outcome ledger.

    Raised when the *running* process tries to violate the ledger —
    closing work twice, closing work it never opened by id, recording
    an unknown outcome.  Cross-process violations (a crash between
    open and close) are not errors at write time; they are what
    :mod:`repro.landscape.audit` detects after the fact.
    """


def current_git_rev(root: Optional[Path] = None) -> Optional[str]:
    """Best-effort ``git rev-parse HEAD`` for provenance stamping.

    Returns ``None`` outside a work tree or without git — provenance
    degrades, recording never fails because of it.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


class LandscapeStore:
    """The durable landscape database.

    Parameters
    ----------
    path:
        Database file; parent directories are created.  The
        conventional location is ``<cache-dir>/landscape.db`` but any
        path works.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`;
        ``landscape.*`` counters are pre-registered and published
        there.
    readonly:
        Open for audit/query without healing, migrating, or taking
        the writer slot.  A missing file raises
        :class:`~repro.common.errors.ConfigError` (there is nothing
        to read) instead of creating an empty store.
    """

    def __init__(self, path, metrics=None, readonly: bool = False):
        self.path = Path(path)
        self.metrics = metrics
        self.readonly = readonly
        self.quarantined = 0
        self.healed_runs = 0
        if metrics is not None:
            for name in LANDSCAPE_COUNTERS:
                metrics.counter(name)
        if readonly:
            if not self.path.exists():
                raise ConfigError(f"no landscape store at {self.path}")
            self._conn = self._open_readonly()
            self._check_version(self._user_version())
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = self._open_rw()

    # -- opening / integrity ------------------------------------------

    def _open_readonly(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            f"file:{self.path}?mode=ro", uri=True,
            isolation_level=None, timeout=60.0,
        )
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA quick_check").fetchone()
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise ConfigError(
                f"landscape store {self.path} is unreadable: {exc}"
            ) from exc
        return conn

    def _open_rw(self) -> sqlite3.Connection:
        conn = self._connect_checked()
        if conn is None:
            # Unreadable: quarantine the bytes and start fresh.
            self._quarantine_db()
            conn = self._connect_checked()
            if conn is None:  # pragma: no cover - fresh db can't fail
                raise ConfigError(
                    f"landscape store {self.path} unreadable even "
                    f"after quarantine"
                )
        self._migrate(conn)
        self._heal(conn)
        return conn

    def _connect_checked(self) -> Optional[sqlite3.Connection]:
        """Connect read-write; ``None`` if the file is not a sound
        database (caller quarantines)."""
        conn = sqlite3.connect(str(self.path), isolation_level=None,
                               timeout=60.0)
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            row = conn.execute("PRAGMA quick_check").fetchone()
            if row is None or row[0] != "ok":
                raise sqlite3.DatabaseError(
                    f"quick_check: {row[0] if row else 'no result'}"
                )
        except sqlite3.DatabaseError:
            conn.close()
            return None
        return conn

    def _quarantine_db(self) -> None:
        """Move the unreadable database (and WAL companions) aside to
        ``<path>.corrupt``, mirroring ResultCache's policy."""
        for suffix in ("", "-wal", "-shm"):
            src = Path(str(self.path) + suffix)
            if not src.exists():
                continue
            try:
                os.replace(src, str(src) + ".corrupt")
            except OSError:
                # Lost a race or an unwritable directory; the fresh
                # connect below will surface anything fatal.
                pass
        self.quarantined += 1
        if self.metrics is not None:
            self.metrics.counter("landscape.corrupt").inc()

    def _user_version(self) -> int:
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    @staticmethod
    def _check_version(version: int) -> None:
        if version > LANDSCAPE_SCHEMA:
            raise ConfigError(
                f"landscape store is schema {version}, newer than this "
                f"build's {LANDSCAPE_SCHEMA}; refusing to touch it"
            )

    def _migrate(self, conn: sqlite3.Connection) -> None:
        version = int(conn.execute("PRAGMA user_version").fetchone()[0])
        self._check_version(version)
        if version == 0:
            # Fresh database: create at the current schema in one
            # transaction (user_version write included, so a kill
            # mid-create leaves version 0 and this simply re-runs).
            conn.execute("BEGIN IMMEDIATE")
            for ddl in CREATE_TABLES:
                conn.execute(ddl)
            conn.execute(f"PRAGMA user_version = {LANDSCAPE_SCHEMA}")
            conn.execute("COMMIT")
            return
        while version < LANDSCAPE_SCHEMA:
            steps = MIGRATIONS.get(version)
            if steps is None:
                raise ConfigError(
                    f"no migration from landscape schema {version} to "
                    f"{version + 1}"
                )
            conn.execute("BEGIN IMMEDIATE")
            for sql in steps:
                conn.execute(sql)
            conn.execute(f"PRAGMA user_version = {version + 1}")
            conn.execute("COMMIT")
            version += 1

    def _heal(self, conn: sqlite3.Connection) -> None:
        """Close runs (and their outcome-less work) left ``open`` by a
        dead writer.  Sound because the store is single-writer: if we
        hold the read-write slot, nobody else is mid-run."""
        now = time.time()
        open_runs = conn.execute(
            "SELECT id FROM runs WHERE status = ?", (RUN_OPEN,)
        ).fetchall()
        for (run_id,) in [tuple(r) for r in open_runs]:
            conn.execute("BEGIN IMMEDIATE")
            orphans = conn.execute(
                "SELECT w.id FROM work w LEFT JOIN outcomes o "
                "ON o.work_id = w.id WHERE w.run_id = ? AND o.id IS NULL",
                (run_id,),
            ).fetchall()
            for (work_id,) in [tuple(r) for r in orphans]:
                conn.execute(
                    "INSERT INTO outcomes "
                    "(work_id, outcome, healed, closed_unix, detail) "
                    "VALUES (?, ?, 1, ?, ?)",
                    (work_id, OUTCOME_INTERRUPTED, now,
                     "healed: writer died with work open"),
                )
            conn.execute(
                "UPDATE runs SET status = ?, healed = 1, "
                "finished_unix = ? WHERE id = ?",
                (OUTCOME_INTERRUPTED, now, run_id),
            )
            conn.execute(
                "INSERT INTO events (run_id, kind, detail, at_unix) "
                "VALUES (?, 'healed', ?, ?)",
                (run_id,
                 f"run healed to interrupted ({len(orphans)} open work "
                 f"rows closed)", now),
            )
            conn.execute("COMMIT")
            self.healed_runs += 1
            if self.metrics is not None:
                self.metrics.counter("landscape.healed").inc()

    # -- write side ----------------------------------------------------

    def _write(self, sql: str, params: Tuple = ()) -> int:
        if self.readonly:
            raise LedgerError("landscape store is read-only")
        cur = self._conn.execute("BEGIN IMMEDIATE")
        try:
            cur = self._conn.execute(sql, params)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return int(cur.lastrowid)

    def begin_run(self, kind: str, label: Optional[str] = None, *,
                  git_rev: Optional[str] = None,
                  cache_schema: Optional[int] = None,
                  bench_schema: Optional[str] = None,
                  kernel: Optional[str] = None,
                  seed: Optional[int] = None,
                  provenance: Optional[Dict] = None) -> "RunRecorder":
        """Open a run row (status ``open``) and return its recorder."""
        if kind not in RUN_KINDS:
            raise LedgerError(f"unknown run kind {kind!r}")
        run_id = self._write(
            "INSERT INTO runs (kind, label, status, started_unix, "
            "git_rev, cache_schema, bench_schema, kernel, seed, "
            "provenance) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (kind, label, RUN_OPEN, time.time(), git_rev, cache_schema,
             bench_schema, kernel, seed,
             json.dumps(provenance, sort_keys=True) if provenance else None),
        )
        if self.metrics is not None:
            self.metrics.counter("landscape.runs").inc()
        return RunRecorder(self, run_id)

    def finish_run(self, run_id: int, status: str,
                   metrics_snapshot: Optional[Dict] = None,
                   payload: Optional[Dict] = None) -> None:
        if status not in TERMINAL_OUTCOMES:
            raise LedgerError(f"unknown run status {status!r}")
        self._write(
            "UPDATE runs SET status = ?, finished_unix = ?, "
            "metrics = COALESCE(?, metrics), "
            "payload = COALESCE(?, payload) WHERE id = ?",
            (status, time.time(),
             json.dumps(metrics_snapshot, sort_keys=True)
             if metrics_snapshot is not None else None,
             json.dumps(payload, sort_keys=True)
             if payload is not None else None,
             run_id),
        )

    def open_work(self, run_id: int, kind: str, key: str, *,
                  workload: Optional[str] = None,
                  variant: Optional[str] = None,
                  seed: Optional[int] = None,
                  fault_plan: Optional[str] = None,
                  trace_digest: Optional[str] = None,
                  kernel: Optional[str] = None,
                  provenance: Optional[Dict] = None) -> int:
        """Record the debit: a unit of work was dispatched."""
        if kind not in WORK_KINDS:
            raise LedgerError(f"unknown work kind {kind!r}")
        work_id = self._write(
            "INSERT INTO work (run_id, kind, key, workload, variant, "
            "seed, fault_plan, trace_digest, kernel, opened_unix, "
            "provenance) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (run_id, kind, key, workload, variant, seed, fault_plan,
             trace_digest, kernel, time.time(),
             json.dumps(provenance, sort_keys=True) if provenance else None),
        )
        if self.metrics is not None:
            self.metrics.counter("landscape.work_opened").inc()
        return work_id

    def close_work(self, work_id: int, outcome: str,
                   detail: Optional[str] = None,
                   healed: bool = False) -> None:
        """Record the credit: the unit reached its terminal outcome."""
        if outcome not in TERMINAL_OUTCOMES:
            raise LedgerError(f"unknown terminal outcome {outcome!r}")
        self._write(
            "INSERT INTO outcomes (work_id, outcome, healed, "
            "closed_unix, detail) VALUES (?, ?, ?, ?, ?)",
            (work_id, outcome, 1 if healed else 0, time.time(), detail),
        )
        if self.metrics is not None:
            self.metrics.counter("landscape.work_closed").inc()

    def event(self, run_id: int, kind: str,
              detail: Optional[str] = None,
              work_id: Optional[int] = None) -> None:
        """Record a non-terminal event (retry, timeout, quarantine…)."""
        self._write(
            "INSERT INTO events (run_id, work_id, kind, detail, at_unix) "
            "VALUES (?, ?, ?, ?, ?)",
            (run_id, work_id, kind, detail, time.time()),
        )
        if self.metrics is not None:
            self.metrics.counter("landscape.events").inc()

    # -- read side -----------------------------------------------------

    def query(self, sql: str, params: Tuple = ()) -> List[sqlite3.Row]:
        return self._conn.execute(sql, params).fetchall()

    def runs(self, kind: Optional[str] = None) -> List[sqlite3.Row]:
        if kind is None:
            return self.query("SELECT * FROM runs ORDER BY id")
        return self.query("SELECT * FROM runs WHERE kind = ? ORDER BY id",
                          (kind,))

    def work_rows(self, run_id: Optional[int] = None) -> List[sqlite3.Row]:
        if run_id is None:
            return self.query("SELECT * FROM work ORDER BY id")
        return self.query("SELECT * FROM work WHERE run_id = ? ORDER BY id",
                          (run_id,))

    def outcome_rows(self) -> List[sqlite3.Row]:
        return self.query("SELECT * FROM outcomes ORDER BY id")

    def events_for(self, run_id: int) -> List[sqlite3.Row]:
        return self.query(
            "SELECT * FROM events WHERE run_id = ? ORDER BY id", (run_id,))

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "LandscapeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RunRecorder:
    """Ledger pen bound to one run.

    Tracks in-process open work by ``(kind, key)`` so call sites can
    close by key (the runner and the campaign journal know keys, not
    row ids), and guards against in-process double closes — the
    cross-process variants stay representable on purpose, for the
    audit to find.
    """

    def __init__(self, store: LandscapeStore, run_id: int):
        self.store = store
        self.run_id = run_id
        self._open: Dict[Tuple[str, str], int] = {}
        self._finished = False

    def open(self, kind: str, key: str, **prov) -> int:
        work_id = self.store.open_work(self.run_id, kind, key, **prov)
        self._open[(kind, key)] = work_id
        return work_id

    def close(self, work_id: int, outcome: str,
              detail: Optional[str] = None) -> None:
        for pair, wid in list(self._open.items()):
            if wid == work_id:
                del self._open[pair]
                break
        else:
            raise LedgerError(
                f"work {work_id} is not open in this recorder "
                f"(double close, or never opened here)"
            )
        self.store.close_work(work_id, outcome, detail)

    def close_key(self, kind: str, key: str, outcome: str,
                  detail: Optional[str] = None, **prov) -> int:
        """Close the tracked open row for ``(kind, key)`` — or, if
        none is tracked, open and close one atomically (a unit whose
        dispatch this recorder never saw, e.g. a journal-resumed cell
        replayed from a previous run)."""
        work_id = self._open.pop((kind, key), None)
        if work_id is None:
            work_id = self.store.open_work(self.run_id, kind, key, **prov)
        self.store.close_work(work_id, outcome, detail)
        return work_id

    def event(self, kind: str, detail: Optional[str] = None,
              key: Optional[Tuple[str, str]] = None) -> None:
        work_id = self._open.get(key) if key is not None else None
        self.store.event(self.run_id, kind, detail, work_id)

    def open_keys(self) -> Iterable[Tuple[str, str]]:
        return tuple(self._open)

    def finish(self, status: str, metrics_snapshot: Optional[Dict] = None,
               payload: Optional[Dict] = None) -> None:
        """Close the run row.  Open work this recorder still tracks is
        closed ``interrupted`` first — the in-process analogue of
        heal-on-reopen (a budget stop or signal unwound the loop)."""
        if self._finished:
            raise LedgerError(f"run {self.run_id} already finished")
        for (kind, key), work_id in sorted(self._open.items()):
            self.store.close_work(
                work_id, OUTCOME_INTERRUPTED,
                detail="run finished with work still open",
            )
        self._open.clear()
        self.store.finish_run(self.run_id, status, metrics_snapshot,
                              payload)
        self._finished = True
