"""The double-entry outcome audit.

The schema deliberately does not make ledger violations impossible —
a crash can always die between the debit (work opened) and the credit
(terminal outcome).  This module is the enforcer: it walks the whole
store and reports every way the books fail to balance:

``orphan``
    a work row with **zero** outcomes in a finished run — the credit
    was lost (torn close, dropped write, a heal that never ran);
``double_commit``
    a work row with **two or more** outcomes — something closed the
    same unit twice (the in-process guard was bypassed, or two
    writers shared a store);
``dangling_outcome``
    an outcome whose work row does not exist — the debit side was
    torn away;
``dangling_work``
    a work row whose run does not exist;
``bad_outcome`` / ``bad_status`` / ``bad_kind``
    values outside the closed vocabularies — a foreign or corrupted
    writer;
``unfinished_run``
    a run still ``open`` in a store nobody is writing — the writer
    died and heal-on-reopen has not run yet (opening the store
    read-write heals it; read-only audits report it).

A clean audit over a SIGKILLed-then-healed store is the acceptance
bar: heal converts the crash into honest ``interrupted`` rows, after
which every unit once again has exactly one terminal outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.landscape.schema import (
    RUN_KINDS,
    RUN_OPEN,
    RUN_STATUSES,
    TERMINAL_OUTCOMES,
    WORK_KINDS,
)
from repro.landscape.store import LandscapeStore


@dataclass(frozen=True)
class AuditFinding:
    """One ledger violation: what rule broke, where, and why."""

    rule: str
    table: str
    row_id: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.table}#{self.row_id}: {self.detail}"


def audit_store(store: LandscapeStore) -> List[AuditFinding]:
    """Audit every run/work/outcome row; empty list means the books
    balance."""
    findings: List[AuditFinding] = []

    run_ids = set()
    for run in store.runs():
        run_ids.add(run["id"])
        if run["kind"] not in RUN_KINDS:
            findings.append(AuditFinding(
                "bad_kind", "runs", run["id"],
                f"unknown run kind {run['kind']!r}"))
        if run["status"] not in RUN_STATUSES:
            findings.append(AuditFinding(
                "bad_status", "runs", run["id"],
                f"unknown run status {run['status']!r}"))
        elif run["status"] == RUN_OPEN:
            findings.append(AuditFinding(
                "unfinished_run", "runs", run["id"],
                "run is still open with no live writer (a read-write "
                "reopen heals it to interrupted)"))
        elif run["finished_unix"] is None:
            findings.append(AuditFinding(
                "bad_status", "runs", run["id"],
                f"terminal status {run['status']!r} without a finish "
                f"timestamp"))

    outcome_counts: dict = {}
    for outcome in store.outcome_rows():
        outcome_counts.setdefault(outcome["work_id"], []).append(outcome)
        if outcome["outcome"] not in TERMINAL_OUTCOMES:
            findings.append(AuditFinding(
                "bad_outcome", "outcomes", outcome["id"],
                f"unknown terminal outcome {outcome['outcome']!r}"))

    open_run_ids = {run["id"] for run in store.runs()
                    if run["status"] == RUN_OPEN}
    work_ids = set()
    for work in store.work_rows():
        work_ids.add(work["id"])
        if work["kind"] not in WORK_KINDS:
            findings.append(AuditFinding(
                "bad_kind", "work", work["id"],
                f"unknown work kind {work['kind']!r}"))
        if work["run_id"] not in run_ids:
            findings.append(AuditFinding(
                "dangling_work", "work", work["id"],
                f"references missing run {work['run_id']}"))
        closes = outcome_counts.get(work["id"], [])
        if len(closes) == 0 and work["run_id"] not in open_run_ids:
            findings.append(AuditFinding(
                "orphan", "work", work["id"],
                f"{work['kind']} {work['key'][:40]!r} was dispatched "
                f"but never reached a terminal outcome"))
        elif len(closes) > 1:
            findings.append(AuditFinding(
                "double_commit", "work", work["id"],
                f"{work['kind']} {work['key'][:40]!r} has "
                f"{len(closes)} terminal outcomes: "
                f"{[o['outcome'] for o in closes]}"))

    for work_id, closes in outcome_counts.items():
        if work_id not in work_ids:
            for outcome in closes:
                findings.append(AuditFinding(
                    "dangling_outcome", "outcomes", outcome["id"],
                    f"references missing work {work_id}"))

    return findings


def format_audit(store: LandscapeStore,
                 findings: List[AuditFinding]) -> str:
    """Human-readable audit report (the ``repro audit`` output)."""
    runs = store.runs()
    work = store.work_rows()
    outcomes = store.outcome_rows()
    healed = sum(1 for r in runs if r["healed"])
    lines = [
        f"landscape audit: {store.path}",
        f"  runs={len(runs)} work={len(work)} outcomes={len(outcomes)} "
        f"healed_runs={healed}",
    ]
    if findings:
        lines.append(f"  LEDGER VIOLATIONS: {len(findings)}")
        lines.extend(f"    {finding}" for finding in findings)
    else:
        lines.append(
            "  ledger balanced: every dispatched unit reached exactly "
            "one terminal outcome")
    return "\n".join(lines)
