"""Durable result landscape: provenance store + outcome ledger.

Everything the simulator produces — grid cells, chaos campaign
cells, bench sections — can be recorded into one sqlite-backed,
crash-safe store with full provenance (content hashes, fault-plan
hashes, trace digests, kernel, seed, schema versions, git rev).  The
store is a double-entry outcome ledger: work is *opened* when
dispatched and must reach exactly one terminal outcome; ``repro
audit`` enforces the invariant after the fact, ``repro query`` reads
regression trajectories across trusted runs.  See docs/landscape.md.

The landscape is strictly opt-in: with no store attached, every run
path behaves (and serializes) byte-identically to a build without
this package.
"""

from repro.landscape.audit import AuditFinding, audit_store, format_audit
from repro.landscape.query import (
    BenchPoint,
    format_trajectory,
    latest_baseline,
    section_deltas,
    trajectory_regressions,
    trusted_bench_runs,
)
from repro.landscape.schema import (
    LANDSCAPE_SCHEMA,
    OUTCOME_FAILED,
    OUTCOME_INTERRUPTED,
    OUTCOME_OK,
    OUTCOME_QUARANTINED,
    TERMINAL_OUTCOMES,
)
from repro.landscape.selftest import (
    SelfTestResult,
    format_selftest,
    run_selftest,
)
from repro.landscape.store import (
    LANDSCAPE_COUNTERS,
    LandscapeStore,
    LedgerError,
    RunRecorder,
    current_git_rev,
)

__all__ = [
    "AuditFinding",
    "BenchPoint",
    "LANDSCAPE_COUNTERS",
    "LANDSCAPE_SCHEMA",
    "LandscapeStore",
    "LedgerError",
    "OUTCOME_FAILED",
    "OUTCOME_INTERRUPTED",
    "OUTCOME_OK",
    "OUTCOME_QUARANTINED",
    "RunRecorder",
    "SelfTestResult",
    "TERMINAL_OUTCOMES",
    "audit_store",
    "current_git_rev",
    "format_audit",
    "format_selftest",
    "format_trajectory",
    "latest_baseline",
    "run_selftest",
    "section_deltas",
    "trajectory_regressions",
    "trusted_bench_runs",
]
